package pyruntime

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDictInsertionOrder(t *testing.T) {
	d := NewDict()
	d.SetStr("z", IntV(1))
	d.SetStr("a", IntV(2))
	d.SetStr("m", IntV(3))
	items := d.Items()
	if Str(items[0][0]) != "z" || Str(items[1][0]) != "a" || Str(items[2][0]) != "m" {
		t.Errorf("order = %v", Repr(d))
	}
	// Re-setting an existing key keeps its position (Python 3.7 semantics).
	d.SetStr("a", IntV(99))
	items = d.Items()
	if Str(items[1][0]) != "a" || items[1][1] != IntV(99) {
		t.Errorf("re-set moved key: %v", Repr(d))
	}
}

func TestDictIntFloatKeyEquivalence(t *testing.T) {
	d := NewDict()
	d.Set(IntV(1), StrV("int"))
	if v, ok := d.Get(FloatV(1.0)); !ok || Str(v) != "int" {
		t.Error("1 and 1.0 should hash identically, as in Python")
	}
	d.Set(FloatV(1.0), StrV("float"))
	if d.Len() != 1 {
		t.Errorf("len = %d, want 1", d.Len())
	}
}

func TestDictTupleKeys(t *testing.T) {
	d := NewDict()
	k1 := &TupleV{Elems: []Value{IntV(1), StrV("a")}}
	k2 := &TupleV{Elems: []Value{IntV(1), StrV("a")}}
	d.Set(k1, IntV(10))
	if v, ok := d.Get(k2); !ok || v != IntV(10) {
		t.Error("equal tuples should be interchangeable keys")
	}
}

func TestDictUnhashableKeys(t *testing.T) {
	d := NewDict()
	if d.Set(&ListV{}, IntV(1)) {
		t.Error("lists must be unhashable")
	}
	if d.Set(NewDict(), IntV(1)) {
		t.Error("dicts must be unhashable")
	}
}

func TestDictDelete(t *testing.T) {
	d := NewDict()
	d.SetStr("a", IntV(1))
	d.SetStr("b", IntV(2))
	if !d.Delete(StrV("a")) {
		t.Error("delete existing failed")
	}
	if d.Delete(StrV("a")) {
		t.Error("double delete succeeded")
	}
	if d.Len() != 1 {
		t.Errorf("len = %d", d.Len())
	}
	items := d.Items()
	if Str(items[0][0]) != "b" {
		t.Error("order corrupted after delete")
	}
}

// Property: DictV behaves like a Go map with insertion order, under any
// sequence of string-keyed set/delete operations.
func TestQuickDictModel(t *testing.T) {
	type op struct {
		Key    string
		Val    int64
		Delete bool
	}
	f := func(ops []op) bool {
		d := NewDict()
		model := map[string]int64{}
		var order []string
		for _, o := range ops {
			if o.Delete {
				if _, ok := model[o.Key]; ok {
					delete(model, o.Key)
					for i, k := range order {
						if k == o.Key {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
					if !d.Delete(StrV(o.Key)) {
						return false
					}
				} else if d.Delete(StrV(o.Key)) {
					return false
				}
				continue
			}
			if _, ok := model[o.Key]; !ok {
				order = append(order, o.Key)
			}
			model[o.Key] = o.Val
			d.SetStr(o.Key, IntV(o.Val))
		}
		if d.Len() != len(model) {
			return false
		}
		items := d.Items()
		if len(items) != len(order) {
			return false
		}
		for i, k := range order {
			if Str(items[i][0]) != k || items[i][1] != IntV(model[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNamespaceOrderAndDelete(t *testing.T) {
	ns := NewNamespace()
	ns.Set("c", IntV(1))
	ns.Set("a", IntV(2))
	ns.Set("b", IntV(3))
	names := ns.Names()
	if strings.Join(names, "") != "cab" {
		t.Errorf("insertion order = %v", names)
	}
	if strings.Join(ns.SortedNames(), "") != "abc" {
		t.Errorf("sorted = %v", ns.SortedNames())
	}
	ns.Delete("a")
	if strings.Join(ns.Names(), "") != "cb" {
		t.Errorf("after delete = %v", ns.Names())
	}
	if ns.Len() != 2 {
		t.Errorf("len = %d", ns.Len())
	}
}

// Property: Equal is reflexive and symmetric over generated scalar values.
func TestQuickEqualSymmetric(t *testing.T) {
	mk := func(kind uint8, i int64, f float64, s string) Value {
		switch kind % 5 {
		case 0:
			return IntV(i)
		case 1:
			return FloatV(f)
		case 2:
			return StrV(s)
		case 3:
			return BoolV(i%2 == 0)
		default:
			return None
		}
	}
	f := func(k1, k2 uint8, i1, i2 int64, f1, f2 float64, s1, s2 string) bool {
		a := mk(k1, i1, f1, s1)
		b := mk(k2, i2, f2, s2)
		if f1 == f1 && !Equal(a, a) { // skip NaN for reflexivity
			return false
		}
		return Equal(a, b) == Equal(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEqualNumericCrossTypes(t *testing.T) {
	if !Equal(IntV(3), FloatV(3.0)) {
		t.Error("3 == 3.0")
	}
	if !Equal(BoolV(true), IntV(1)) {
		t.Error("True == 1")
	}
	if Equal(StrV("1"), IntV(1)) {
		t.Error("'1' != 1")
	}
	if !Equal(
		&ListV{Elems: []Value{IntV(1), StrV("x")}},
		&ListV{Elems: []Value{FloatV(1), StrV("x")}}) {
		t.Error("nested numeric equality")
	}
}

func TestTruthTable(t *testing.T) {
	truthy := []Value{IntV(1), FloatV(0.1), StrV("x"), BoolV(true),
		&ListV{Elems: []Value{None}}, &TupleV{Elems: []Value{None}}}
	falsy := []Value{IntV(0), FloatV(0), StrV(""), BoolV(false), None,
		&ListV{}, &TupleV{}, NewDict()}
	for _, v := range truthy {
		if !Truth(v) {
			t.Errorf("%s should be truthy", Repr(v))
		}
	}
	for _, v := range falsy {
		if Truth(v) {
			t.Errorf("%s should be falsy", Repr(v))
		}
	}
}

func TestReprFormats(t *testing.T) {
	cases := map[string]Value{
		"None":          None,
		"True":          BoolV(true),
		"42":            IntV(42),
		"2.5":           FloatV(2.5),
		"3.0":           FloatV(3),
		"'hi'":          StrV("hi"),
		"'a\\nb'":       StrV("a\nb"),
		"[1, 'x']":      &ListV{Elems: []Value{IntV(1), StrV("x")}},
		"(1,)":          &TupleV{Elems: []Value{IntV(1)}},
		"(1, 2)":        &TupleV{Elems: []Value{IntV(1), IntV(2)}},
		"{'k': [1]}":    mkDict("k", &ListV{Elems: []Value{IntV(1)}}),
		"<module 'os'>": &ModuleV{Name: "os"},
	}
	for want, v := range cases {
		if got := Repr(v); got != want {
			t.Errorf("Repr = %q, want %q", got, want)
		}
	}
}

func mkDict(k string, v Value) *DictV {
	d := NewDict()
	d.SetStr(k, v)
	return d
}

// Property: FromGo/ToGo round-trips JSON-like values.
func TestQuickConvertRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		if fl != fl { // NaN doesn't round-trip by equality
			return true
		}
		in := map[string]any{
			"int": i, "float": fl, "str": s, "bool": b,
			"list":   []any{i, s},
			"nested": map[string]any{"k": s},
			"null":   nil,
		}
		v, err := FromGo(in)
		if err != nil {
			return false
		}
		out, ok := ToGo(v).(map[string]any)
		if !ok {
			return false
		}
		if out["int"] != i || out["float"] != fl || out["str"] != s || out["bool"] != b {
			return false
		}
		lst, ok := out["list"].([]any)
		if !ok || len(lst) != 2 || lst[0] != i || lst[1] != s {
			return false
		}
		nested, ok := out["nested"].(map[string]any)
		return ok && nested["k"] == s && out["null"] == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromGoRejectsUnknownTypes(t *testing.T) {
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("struct should be rejected")
	}
	if _, err := FromGo(map[string]any{"bad": make(chan int)}); err == nil {
		t.Error("channel should be rejected")
	}
}

func TestSizeOfPositive(t *testing.T) {
	values := []Value{IntV(1), FloatV(1), StrV("abc"), &ListV{},
		&TupleV{}, NewDict(), &FuncV{}, &ClassV{}, &ModuleV{},
		&InstanceV{Dict: NewNamespace()}}
	for _, v := range values {
		if SizeOf(v) < 0 {
			t.Errorf("SizeOf(%s) negative", v.TypeName())
		}
	}
	if SizeOf(StrV("aaaa")) <= SizeOf(StrV("a")) {
		t.Error("longer strings should be bigger")
	}
}

func TestRangeLen(t *testing.T) {
	cases := []struct {
		r    RangeV
		want int64
	}{
		{RangeV{0, 10, 1}, 10},
		{RangeV{0, 10, 3}, 4},
		{RangeV{10, 0, -1}, 10},
		{RangeV{10, 0, -3}, 4},
		{RangeV{0, 0, 1}, 0},
		{RangeV{5, 2, 1}, 0},
		{RangeV{2, 5, -1}, 0},
	}
	for _, c := range cases {
		if got := c.r.Len(); got != c.want {
			t.Errorf("Len(%+v) = %d, want %d", c.r, got, c.want)
		}
		if got := int64(len(c.r.materialize())); got != c.want {
			t.Errorf("materialize(%+v) = %d elems, want %d", c.r, got, c.want)
		}
	}
}

func TestClassSubclassChain(t *testing.T) {
	base := &ClassV{Name: "Base", Dict: NewNamespace()}
	mid := &ClassV{Name: "Mid", Base: base, Dict: NewNamespace()}
	leaf := &ClassV{Name: "Leaf", Base: mid, Dict: NewNamespace()}
	if !leaf.IsSubclassOf(base) || !leaf.IsSubclassOf(leaf) {
		t.Error("subclass chain broken")
	}
	if base.IsSubclassOf(leaf) {
		t.Error("inverse subclass relation")
	}
}
