package pyruntime

import (
	"fmt"
	"sort"
)

// FromGo converts a JSON-like Go value (nil, bool, int, int64, float64,
// string, []any, map[string]any) into a runtime Value. It is used to build
// lambda events from oracle specifications. Map keys are inserted in sorted
// order so event construction is deterministic.
func FromGo(v any) (Value, error) {
	switch t := v.(type) {
	case nil:
		return None, nil
	case bool:
		return BoolV(t), nil
	case int:
		return IntV(int64(t)), nil
	case int64:
		return IntV(t), nil
	case float64:
		return FloatV(t), nil
	case string:
		return StrV(t), nil
	case []any:
		elems := make([]Value, len(t))
		for i, e := range t {
			ev, err := FromGo(e)
			if err != nil {
				return nil, err
			}
			elems[i] = ev
		}
		return &ListV{Elems: elems}, nil
	case map[string]any:
		d := NewDict()
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ev, err := FromGo(t[k])
			if err != nil {
				return nil, err
			}
			d.SetStr(k, ev)
		}
		return d, nil
	}
	return nil, fmt.Errorf("pyruntime: cannot convert %T to a runtime value", v)
}

// MustFromGo is FromGo that panics on error; for literals in tests and
// corpus definitions.
func MustFromGo(v any) Value {
	out, err := FromGo(v)
	if err != nil {
		panic(err)
	}
	return out
}

// ToGo converts a runtime Value back into a JSON-like Go value. Non-data
// values (functions, modules, classes) convert to their repr string.
func ToGo(v Value) any {
	switch t := v.(type) {
	case NoneV:
		return nil
	case BoolV:
		return bool(t)
	case IntV:
		return int64(t)
	case FloatV:
		return float64(t)
	case StrV:
		return string(t)
	case *ListV:
		out := make([]any, len(t.Elems))
		for i, e := range t.Elems {
			out[i] = ToGo(e)
		}
		return out
	case *TupleV:
		out := make([]any, len(t.Elems))
		for i, e := range t.Elems {
			out[i] = ToGo(e)
		}
		return out
	case *DictV:
		out := make(map[string]any, t.Len())
		for _, kv := range t.Items() {
			out[Str(kv[0])] = ToGo(kv[1])
		}
		return out
	}
	return Repr(v)
}
