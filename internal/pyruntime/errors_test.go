package pyruntime

import (
	"strings"
	"testing"
)

// Error-path coverage for the evaluator.

func TestTypeErrorsFromCalls(t *testing.T) {
	cases := map[string]string{
		`def f(a): pass` + "\nf(1, 2)":           "TypeError", // too many args
		`def f(a): pass` + "\nf()":               "TypeError", // missing arg
		`def f(a): pass` + "\nf(b=1)":            "TypeError", // unknown kwarg
		`def f(a): pass` + "\nf(1, a=1)":         "TypeError", // duplicate
		`class C:` + "\n    pass\nC().missing()": "AttributeError",
		`"str".missing`:                          "AttributeError",
		`[].missing`:                             "AttributeError",
		`{}.missing`:                             "AttributeError",
		`(1).missing`:                            "AttributeError",
	}
	for src, wantClass := range cases {
		perr := runExpectErr(t, src)
		if perr.ClassName() != wantClass {
			t.Errorf("%q raised %s, want %s", src, perr.ClassName(), wantClass)
		}
	}
}

func TestSetAttrOnImmutable(t *testing.T) {
	perr := runExpectErr(t, "x = 1\nx.attr = 2")
	if perr.ClassName() != "AttributeError" {
		t.Errorf("class = %s", perr.ClassName())
	}
}

func TestItemAssignmentErrors(t *testing.T) {
	if perr := runExpectErr(t, `(1, 2)[0] = 5`); perr.ClassName() != "TypeError" {
		t.Errorf("tuple assign = %s", perr.ClassName())
	}
	if perr := runExpectErr(t, `"abc"[0] = "z"`); perr.ClassName() != "TypeError" {
		t.Errorf("str assign = %s", perr.ClassName())
	}
	if perr := runExpectErr(t, `[1, 2][5] = 0`); perr.ClassName() != "IndexError" {
		t.Errorf("oob assign = %s", perr.ClassName())
	}
}

func TestUnpackErrors(t *testing.T) {
	if perr := runExpectErr(t, "a, b = [1, 2, 3]"); perr.ClassName() != "ValueError" {
		t.Errorf("unpack mismatch = %s", perr.ClassName())
	}
	if perr := runExpectErr(t, "a, b = 5"); perr.ClassName() != "TypeError" {
		t.Errorf("unpack non-iterable = %s", perr.ClassName())
	}
}

func TestIterationErrors(t *testing.T) {
	if perr := runExpectErr(t, "for x in 42:\n    pass"); perr.ClassName() != "TypeError" {
		t.Errorf("iterate int = %s", perr.ClassName())
	}
	if perr := runExpectErr(t, "1 in 2"); perr.ClassName() != "TypeError" {
		t.Errorf("in on int = %s", perr.ClassName())
	}
}

func TestUnhashableDictKey(t *testing.T) {
	if perr := runExpectErr(t, "d = {[1]: 2}"); perr.ClassName() != "TypeError" {
		t.Errorf("unhashable key = %s", perr.ClassName())
	}
	if perr := runExpectErr(t, "d = {}\nd[[1]] = 2"); perr.ClassName() != "TypeError" {
		t.Errorf("unhashable setitem = %s", perr.ClassName())
	}
}

func TestDelErrors(t *testing.T) {
	if perr := runExpectErr(t, "del undefined"); perr.ClassName() != "NameError" {
		t.Errorf("del undefined = %s", perr.ClassName())
	}
	if perr := runExpectErr(t, "d = {}\ndel d[\"k\"]"); perr.ClassName() != "KeyError" {
		t.Errorf("del missing key = %s", perr.ClassName())
	}
	if perr := runExpectErr(t, "class C:\n    pass\nc = C()\ndel c.missing"); perr.ClassName() != "AttributeError" {
		t.Errorf("del missing attr = %s", perr.ClassName())
	}
}

func TestAssertErrors(t *testing.T) {
	perr := runExpectErr(t, `assert False, "custom message"`)
	if perr.ClassName() != "AssertionError" || perr.Message() != "custom message" {
		t.Errorf("assert = %s / %q", perr.ClassName(), perr.Message())
	}
}

func TestBareRaiseOutsideExcept(t *testing.T) {
	perr := runExpectErr(t, "raise")
	if perr.ClassName() != "RuntimeError" {
		t.Errorf("bare raise = %s", perr.ClassName())
	}
}

func TestExceptTypeMustBeClass(t *testing.T) {
	perr := runExpectErr(t, `
try:
    raise ValueError("x")
except "not a class":
    pass
`)
	if perr.ClassName() != "TypeError" {
		t.Errorf("class = %s", perr.ClassName())
	}
}

func TestUserExceptionUncaughtPropagates(t *testing.T) {
	perr := runExpectErr(t, `
class MyError(Exception):
    pass
raise MyError("custom")
`)
	if perr.ClassName() != "MyError" {
		t.Errorf("class = %s", perr.ClassName())
	}
	if perr.Message() != "custom" {
		t.Errorf("message = %q", perr.Message())
	}
	if !strings.Contains(perr.Error(), "MyError: custom") {
		t.Errorf("Error() = %q", perr.Error())
	}
}

func TestExceptionReprInOutput(t *testing.T) {
	expectOutput(t, `
try:
    raise KeyError("missing")
except KeyError as e:
    print(e)
    print(repr(e))
`, "KeyError('missing')\nKeyError('missing')\n")
}

func TestClassBaseMustBeClass(t *testing.T) {
	perr := runExpectErr(t, "class C(42):\n    pass")
	if perr.ClassName() != "TypeError" {
		t.Errorf("class = %s", perr.ClassName())
	}
}

func TestSliceOnUnsliceable(t *testing.T) {
	perr := runExpectErr(t, "d = {}\nd[1:2]")
	if perr.ClassName() != "TypeError" {
		t.Errorf("class = %s", perr.ClassName())
	}
}

func TestNonCallableClassInit(t *testing.T) {
	perr := runExpectErr(t, `
class C:
    __init__ = 42
C()
`)
	if perr.ClassName() != "TypeError" {
		t.Errorf("class = %s", perr.ClassName())
	}
}

func TestImplicitChainingOnDerivedError(t *testing.T) {
	// An exception raised while another is being handled carries the
	// original as its Cause (CPython's __context__).
	perr := runExpectErr(t, `
try:
    [].missing
except AttributeError:
    raise RuntimeError("derived")
`)
	if perr.ClassName() != "RuntimeError" {
		t.Fatalf("class = %s", perr.ClassName())
	}
	if perr.Cause == nil || perr.Cause.ClassName() != "AttributeError" {
		t.Fatalf("cause = %+v, want AttributeError", perr.Cause)
	}
	if !perr.HasClass("AttributeError") || !perr.HasClass("RuntimeError") {
		t.Error("HasClass should see both links of the chain")
	}
	if perr.HasClass("ValueError") {
		t.Error("HasClass must not invent classes")
	}
}

func TestImplicitChainingInsideHandler(t *testing.T) {
	// An AttributeError raised inside an unrelated exception handler chains
	// onto the exception that was being handled.
	perr := runExpectErr(t, `
try:
    raise ValueError("first")
except ValueError:
    [].missing
`)
	if perr.ClassName() != "AttributeError" {
		t.Fatalf("class = %s", perr.ClassName())
	}
	if perr.Cause == nil || perr.Cause.ClassName() != "ValueError" {
		t.Fatalf("cause = %+v, want ValueError", perr.Cause)
	}
}

func TestImplicitChainingMultiLevel(t *testing.T) {
	perr := runExpectErr(t, `
try:
    try:
        [].missing
    except AttributeError:
        raise KeyError("mid")
except KeyError:
    raise RuntimeError("outer")
`)
	got := []string{}
	for e := perr; e != nil; e = e.Cause {
		got = append(got, e.ClassName())
	}
	want := "RuntimeError/KeyError/AttributeError"
	if strings.Join(got, "/") != want {
		t.Errorf("chain = %s, want %s", strings.Join(got, "/"), want)
	}
}

func TestReraiseDoesNotSelfChain(t *testing.T) {
	perr := runExpectErr(t, `
try:
    raise ValueError("v")
except ValueError as e:
    raise e
`)
	if perr.ClassName() != "ValueError" {
		t.Fatalf("class = %s", perr.ClassName())
	}
	if perr.Cause != nil {
		t.Errorf("re-raising the handled exception must not chain onto itself: cause = %v", perr.Cause)
	}
}

func TestHandledExceptionLeavesNoChain(t *testing.T) {
	// A handler that recovers cleanly must not taint later exceptions.
	perr := runExpectErr(t, `
try:
    [].missing
except AttributeError:
    pass
raise ValueError("later")
`)
	if perr.ClassName() != "ValueError" || perr.Cause != nil {
		t.Errorf("got %s with cause %v, want un-chained ValueError", perr.ClassName(), perr.Cause)
	}
}

func TestErrorInsideImportedModulePropagates(t *testing.T) {
	fs := map[string]string{
		"site-packages/broken.py": "x = 1 / 0\n",
	}
	perr := runExpectErrFiles(t, "import broken", fs)
	if perr.ClassName() != "ZeroDivisionError" {
		t.Errorf("import error = %s", perr.ClassName())
	}
	// A failed import leaves the module out of the cache so a retry
	// re-raises rather than returning a half-built module.
	perr = runExpectErrFiles(t, "try:\n    import broken\nexcept ZeroDivisionError:\n    pass\nimport broken", fs)
	if perr.ClassName() != "ZeroDivisionError" {
		t.Errorf("retry error = %s", perr.ClassName())
	}
}
