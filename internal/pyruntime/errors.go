package pyruntime

import (
	"fmt"
	"sync"

	"repro/internal/pylang"
)

// PyErr is a raised Python exception propagating through the interpreter.
// It is distinct from Go errors: a PyErr can be caught by except clauses,
// while Go errors from the embedding API are always fatal.
type PyErr struct {
	Value *InstanceV // the exception instance
	Pos   pylang.Pos
	Where string // module or function where it was raised
	// Cause is the implicitly-chained predecessor (CPython's __context__):
	// the exception that was being handled when this one was raised. The
	// chain lets embedders recognize a failure's root cause even when
	// application code catches and re-wraps it (e.g. the fallback wrapper
	// matching an AttributeError buried under a derived RuntimeError).
	Cause *PyErr
}

// Error implements the error interface with a Python-style rendering.
func (e *PyErr) Error() string {
	msg := e.Message()
	if msg == "" {
		return e.Value.Class.Name
	}
	return e.Value.Class.Name + ": " + msg
}

// ClassName returns the exception class name ("AttributeError", ...).
func (e *PyErr) ClassName() string { return e.Value.Class.Name }

// Message returns the first exception argument rendered with str().
func (e *PyErr) Message() string {
	args, ok := e.Value.Dict.Get("args")
	if !ok {
		return ""
	}
	tup, ok := args.(*TupleV)
	if !ok || len(tup.Elems) == 0 {
		return ""
	}
	return Str(tup.Elems[0])
}

// Matches reports whether the exception is an instance of class c
// (or a subclass of it).
func (e *PyErr) Matches(c *ClassV) bool { return e.Value.Class.IsSubclassOf(c) }

// HasClass reports whether the exception — or any exception on its cause
// chain — is an instance of the named class. Chains are produced by
// chainCause and are acyclic by construction; the walk is bounded anyway
// as a guard against malformed chains.
func (e *PyErr) HasClass(name string) bool {
	for depth := 0; e != nil && depth < 64; depth++ {
		if e.ClassName() == name {
			return true
		}
		e = e.Cause
	}
	return false
}

// chainCause records ctx as the cause of err (implicit exception chaining:
// err was raised while ctx was being handled). The cause lands on the
// innermost unset slot of err's existing chain; self-links are refused —
// by exception instance, since `raise e` re-wraps the same instance in a
// fresh PyErr — so re-raising the active exception never forms a cycle.
func chainCause(err, ctx *PyErr) {
	if err == nil || ctx == nil || err.Value == ctx.Value {
		return
	}
	e := err
	for depth := 0; e.Cause != nil && depth < 64; depth++ {
		if e.Cause.Value == ctx.Value {
			return
		}
		e = e.Cause
	}
	if e.Value != ctx.Value {
		e.Cause = ctx
	}
}

// builtin exception hierarchy names; each maps to its base class name.
// "BaseException" is the root.
var exceptionTree = [][2]string{
	{"BaseException", ""},
	{"Exception", "BaseException"},
	{"ArithmeticError", "Exception"},
	{"ZeroDivisionError", "ArithmeticError"},
	{"OverflowError", "ArithmeticError"},
	{"AttributeError", "Exception"},
	{"LookupError", "Exception"},
	{"IndexError", "LookupError"},
	{"KeyError", "LookupError"},
	{"NameError", "Exception"},
	{"TypeError", "Exception"},
	{"ValueError", "Exception"},
	{"ImportError", "Exception"},
	{"ModuleNotFoundError", "ImportError"},
	{"RuntimeError", "Exception"},
	{"NotImplementedError", "RuntimeError"},
	{"RecursionError", "RuntimeError"},
	{"AssertionError", "Exception"},
	{"StopIteration", "Exception"},
	{"OSError", "Exception"},
	{"FileNotFoundError", "OSError"},
	{"TimeoutError", "OSError"},
	{"ConnectionError", "OSError"},
	{"MemoryError", "Exception"},
	{"KeyboardInterrupt", "BaseException"},
}

// buildExceptionClasses returns the builtin exception class objects. They
// are built once and shared by every interpreter: builtin classes are
// immutable (setAttr rejects them, as CPython does), so a fresh set per
// oracle-run interpreter would only burn allocations.
var (
	excClassesOnce   sync.Once
	excClassesShared map[string]*ClassV
)

func buildExceptionClasses() map[string]*ClassV {
	excClassesOnce.Do(func() { excClassesShared = buildExceptionClassSet() })
	return excClassesShared
}

func buildExceptionClassSet() map[string]*ClassV {
	classes := make(map[string]*ClassV, len(exceptionTree))
	for _, pair := range exceptionTree {
		name, baseName := pair[0], pair[1]
		var base *ClassV
		if baseName != "" {
			base = classes[baseName]
		}
		classes[name] = &ClassV{
			// An empty Namespace (nil map, lazily allocated on first Set):
			// exception dicts almost never gain attributes, and a fresh
			// class set is built for every oracle-run interpreter.
			Name: name, Base: base, Dict: &Namespace{},
			Module: "builtins", Exception: true,
		}
	}
	return classes
}

// NewExc constructs an exception instance of the named builtin class.
func (in *Interp) NewExc(class string, format string, args ...any) *PyErr {
	c, ok := in.excClasses[class]
	if !ok {
		c = in.excClasses["RuntimeError"]
	}
	msg := fmt.Sprintf(format, args...)
	inst := &InstanceV{Class: c, Dict: NewNamespace()}
	inst.Dict.Set("args", &TupleV{Elems: []Value{StrV(msg)}})
	return &PyErr{Value: inst}
}

// ExcClass exposes a builtin exception class (for harnesses that need to
// test isinstance relationships, e.g. the fallback wrapper).
func (in *Interp) ExcClass(name string) (*ClassV, bool) {
	c, ok := in.excClasses[name]
	return c, ok
}
