package pyruntime

import (
	"testing"

	"repro/internal/vfs"
)

// snapTestImage builds a small app image exercising functions, classes,
// closures, containers, aliasing, nested imports, cyclic imports, id(),
// native buffers and remote calls at import time.
func snapTestImage() *vfs.FS {
	fs := vfs.New()
	fs.Write("site-packages/libA/__init__.py", `
import libA.core
from libA.core import helper, CONFIG
VERSION = "1.2"
registry = [helper, CONFIG]
print("libA ready")
`)
	fs.Write("site-packages/libA/core.py", `
load_native(5, 12.5)
CONFIG = {"mode": "fast", "level": 3}
def helper(x):
    return x * 2
class Engine:
    def __init__(self, n):
        self.n = n
    def run(self):
        return helper(self.n)
default_engine = Engine(7)
token = id(CONFIG)
buf = native_alloc(2.5)
r = range(4)
`)
	fs.Write("site-packages/libB.py", `
from libA import helper, CONFIG
import libA.core
alias = CONFIG
def wrapped(x):
    return helper(x) + 1
remote_call("s3", "get", "cfg")
`)
	fs.Write("app.py", `
import libB
from libA.core import default_engine
def handler(event, ctx):
    same = libB.alias is libB.CONFIG
    return [libB.wrapped(event), default_engine.run(), same]
`)
	return fs
}

type snapRunResult struct {
	out     string
	clock   int64
	remote  []RemoteCall
	fuel    int64
	idCount int64
	result  string
}

func snapRun(t *testing.T, fs *vfs.FS, snap *SnapshotCache) snapRunResult {
	t.Helper()
	in := New(fs)
	if snap != nil {
		in.SetSnapshots(snap)
	}
	mod, err := in.Import("app")
	if err != nil {
		t.Fatalf("import app: %v", err)
	}
	h, _ := mod.Dict.Get("handler")
	res, err := in.CallFunction(h, []Value{IntV(10), None})
	if err != nil {
		t.Fatalf("handler: %v", err)
	}
	return snapRunResult{
		out:     in.OutputString(),
		clock:   int64(in.Clock.Now()),
		remote:  in.RemoteLog,
		fuel:    in.fuel,
		idCount: in.idCounter,
		result:  Repr(res),
	}
}

func assertSameRun(t *testing.T, want, got snapRunResult, label string) {
	t.Helper()
	if got.out != want.out {
		t.Errorf("%s: stdout diverged: %q vs %q", label, got.out, want.out)
	}
	if got.clock != want.clock {
		t.Errorf("%s: clock diverged: %d vs %d", label, got.clock, want.clock)
	}
	if got.fuel != want.fuel {
		t.Errorf("%s: fuel diverged: %d vs %d", label, got.fuel, want.fuel)
	}
	if got.idCount != want.idCount {
		t.Errorf("%s: id counter diverged: %d vs %d", label, got.idCount, want.idCount)
	}
	if got.result != want.result {
		t.Errorf("%s: result diverged: %s vs %s", label, got.result, want.result)
	}
	if len(got.remote) != len(want.remote) {
		t.Fatalf("%s: remote journal length diverged: %d vs %d", label, len(got.remote), len(want.remote))
	}
	for i := range got.remote {
		if got.remote[i] != want.remote[i] {
			t.Errorf("%s: remote[%d] diverged: %+v vs %+v", label, i, got.remote[i], want.remote[i])
		}
	}
}

// TestSnapshotReplayByteIdentical is the core invariant: replaying memoized
// import windows must reproduce every simulated observable exactly.
func TestSnapshotReplayByteIdentical(t *testing.T) {
	fs := snapTestImage()
	baseline := snapRun(t, fs, nil)

	snap := NewSnapshotCache()
	first := snapRun(t, fs, snap) // records
	assertSameRun(t, baseline, first, "recording run")
	if s := snap.Stats(); s.Hits != 0 || s.Misses == 0 {
		t.Fatalf("recording run: unexpected stats %+v", s)
	}

	second := snapRun(t, fs, snap) // replays
	assertSameRun(t, baseline, second, "replay run")
	if s := snap.Stats(); s.Hits == 0 {
		t.Fatalf("replay run produced no cache hits: %+v", s)
	}
}

// TestSnapshotReplayedNamespaceIsFresh: replayed module state must be a
// fresh clone per interpreter — mutations in one run must not leak into the
// next replay.
func TestSnapshotReplayedNamespaceIsFresh(t *testing.T) {
	fs := vfs.New()
	fs.Write("site-packages/state.py", "items = [1, 2]\n")
	fs.Write("app.py", `
import state
def handler(event, ctx):
    state.items.append(event)
    return len(state.items)
`)
	snap := NewSnapshotCache()
	for i := 0; i < 3; i++ {
		in := New(fs)
		in.SetSnapshots(snap)
		mod, err := in.Import("app")
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		h, _ := mod.Dict.Get("handler")
		res, err := in.CallFunction(h, []Value{IntV(int64(i)), None})
		if err != nil {
			t.Fatalf("run %d handler: %v", i, err)
		}
		if Repr(res) != "3" {
			t.Fatalf("run %d: handler mutation leaked across replays: got %s", i, Repr(res))
		}
	}
}

// TestSnapshotInvalidatedByOverride: changing one module's source must force
// re-execution of windows that depend on it, while untouched leaf windows
// still replay.
func TestSnapshotInvalidatedByOverride(t *testing.T) {
	fs := snapTestImage()
	snap := NewSnapshotCache()
	snapRun(t, fs, snap)

	// Same cache, mutated libB source: libB (and app, which imports it)
	// must re-execute; the libA chain must still replay.
	fs2 := snapTestImage()
	fs2.Write("site-packages/libB.py", `
from libA import helper
def wrapped(x):
    return helper(x) + 100
alias = None
CONFIG = None
`)
	in := New(fs2)
	in.SetSnapshots(snap)
	mod, err := in.Import("app")
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	h, _ := mod.Dict.Get("handler")
	res, err := in.CallFunction(h, []Value{IntV(1), None})
	if err != nil {
		t.Fatalf("handler: %v", err)
	}
	lst, ok := res.(*ListV)
	if !ok || Repr(lst.Elems[0]) != "102" {
		t.Fatalf("modified libB not re-executed: %s", Repr(res))
	}
	if s := snap.Stats(); s.Hits == 0 {
		t.Fatalf("untouched libA chain should have replayed: %+v", s)
	}
}

// TestSnapshotCyclicImports: modules with an import cycle still record and
// replay correctly when the cycle is contained in one window.
func TestSnapshotCyclicImports(t *testing.T) {
	fs := vfs.New()
	fs.Write("site-packages/cyca.py", `
import cycb
A = 1
def fa():
    return cycb.B
`)
	fs.Write("site-packages/cycb.py", `
import cyca
B = 2
`)
	fs.Write("app.py", `
import cyca
def handler(event, ctx):
    return cyca.fa() + cyca.A
`)
	var want string
	snap := NewSnapshotCache()
	for i := 0; i < 2; i++ {
		in := New(fs)
		in.SetSnapshots(snap)
		mod, err := in.Import("app")
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		h, _ := mod.Dict.Get("handler")
		res, err := in.CallFunction(h, []Value{None, None})
		if err != nil {
			t.Fatalf("run %d handler: %v", i, err)
		}
		if i == 0 {
			want = Repr(res)
		} else if Repr(res) != want {
			t.Fatalf("cyclic replay diverged: %s vs %s", Repr(res), want)
		}
	}
	if s := snap.Stats(); s.Hits == 0 {
		t.Fatalf("second run should replay: %+v", s)
	}
}

// TestSnapshotProfilerHooksBypass: interpreters with import hooks must not
// record or replay (the profiler needs live execution).
func TestSnapshotProfilerHooksBypass(t *testing.T) {
	fs := snapTestImage()
	snap := NewSnapshotCache()
	snapRun(t, fs, snap) // warm the cache

	before := snap.Stats()
	in := New(fs)
	in.SetSnapshots(snap)
	seen := 0
	in.AddImportHook(hookFunc{
		before: func(string) { seen++ },
		after:  func(string, error) {},
	})
	if _, err := in.Import("app"); err != nil {
		t.Fatalf("import: %v", err)
	}
	if seen == 0 {
		t.Fatal("hooks did not observe module executions")
	}
	after := snap.Stats()
	if after.Hits != before.Hits {
		t.Fatalf("hooked interpreter consumed cache hits: %+v vs %+v", after, before)
	}
}
