package pyruntime

import (
	"strings"

	"repro/internal/pylang"
	"repro/internal/pyparser"
)

// Module search roots, in order. Application code lives at the image root;
// third-party libraries live under site-packages (which is the directory
// λ-trim's debloater rewrites).
var searchRoots = []string{"", "site-packages/"}

// SitePackages is the prefix for library code inside a deployment image.
const SitePackages = "site-packages/"

// Import loads a dotted module name, executing each package on the path
// root-first, exactly like CPython: "import a.b.c" ensures a, a.b and a.b.c
// are all in the module table, and returns the leaf module.
func (in *Interp) Import(dotted string) (*ModuleV, *PyErr) {
	parts := strings.Split(dotted, ".")
	var mod *ModuleV
	prefix := ""
	for i, part := range parts {
		if prefix == "" {
			prefix = part
		} else {
			prefix = prefix + "." + part
		}
		m, err := in.importOne(prefix)
		if err != nil {
			return nil, err
		}
		// Bind the submodule as an attribute of its parent package.
		if i > 0 {
			parent := in.modules[strings.Join(parts[:i], ".")]
			if parent != nil {
				if _, exists := parent.Dict.Get(part); !exists {
					in.Alloc.Alloc(64)
				}
				parent.Dict.Set(part, m)
			}
		}
		mod = m
	}
	return mod, nil
}

// importOne loads a single fully-qualified module (all parents loaded).
func (in *Interp) importOne(name string) (*ModuleV, *PyErr) {
	if m, ok := in.modules[name]; ok {
		return m, nil
	}
	for _, active := range in.importStack {
		if active == name {
			// Cyclic import: return the partially-initialized module, as
			// CPython does.
			if m, ok := in.modules[name]; ok {
				return m, nil
			}
		}
	}

	body, file, found := in.findModule(name)
	if !found {
		return nil, in.NewExc("ModuleNotFoundError", "No module named '%s'", name)
	}

	mod := &ModuleV{Name: name, Dict: NewNamespace(), File: file}
	in.Alloc.Alloc(SizeOf(mod))
	mod.Dict.Set("__name__", StrV(name))
	mod.Dict.Set("__file__", StrV(file))
	in.modules[name] = mod
	in.importStack = append(in.importStack, name)

	for _, h := range in.hooks {
		h.BeforeModuleExec(name)
	}
	fr := &frame{globals: mod.Dict, module: name}
	_, err := in.execStmts(fr, body)
	for _, h := range in.hooks {
		if err != nil {
			h.AfterModuleExec(name, err)
		} else {
			h.AfterModuleExec(name, nil)
		}
	}
	in.importStack = in.importStack[:len(in.importStack)-1]
	if err != nil {
		delete(in.modules, name)
		return nil, err
	}
	return mod, nil
}

// findModule resolves a dotted name to a parsed body. Overrides (debloater
// AST overlays) take precedence; otherwise the file is located under the
// search roots as either pkg/mod.py or pkg/mod/__init__.py.
func (in *Interp) findModule(name string) ([]pylang.Stmt, string, bool) {
	if ast, ok := in.overrides[name]; ok {
		return ast.Body, "<override:" + name + ">", true
	}
	rel := strings.ReplaceAll(name, ".", "/")
	for _, root := range searchRoots {
		for _, candidate := range []string{root + rel + ".py", root + rel + "/__init__.py"} {
			src, err := in.FS.Read(candidate)
			if err != nil {
				continue
			}
			mod, perr := in.parseCached(candidate, name, src)
			if perr != nil {
				// Surface parse errors as a module body that raises; the
				// importer converts it below.
				return []pylang.Stmt{&pylang.RaiseStmt{
					Value: &pylang.CallExpr{
						Func: &pylang.NameExpr{Name: "ImportError"},
						Args: []pylang.Expr{&pylang.StringLit{Value: perr.Error()}},
					},
				}}, candidate, true
			}
			return mod.Body, candidate, true
		}
	}
	return nil, "", false
}

func (in *Interp) parseCached(path, name, src string) (*pylang.Module, error) {
	key := path + "\x00" + src
	if m, ok := in.astCache.Get(key); ok {
		return m, nil
	}
	mod, err := pyparser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	in.astCache.Put(key, mod)
	return mod, nil
}

// execFromImport implements "from X import a, b" including relative levels
// and star imports.
func (in *Interp) execFromImport(fr *frame, v *pylang.FromImportStmt) *PyErr {
	target := v.Module
	if v.Level > 0 {
		pkg := fr.module
		// A package's own __init__ executes with module name == package, so
		// one level strips nothing extra for it; for plain modules a level
		// strips the final component. We approximate CPython by treating
		// the current module as a package iff its file is an __init__.
		isPkg := false
		if m, ok := in.modules[fr.module]; ok {
			isPkg = strings.HasSuffix(m.File, "__init__.py") || strings.HasPrefix(m.File, "<override:")
		}
		for i := 0; i < v.Level; i++ {
			if i == 0 && isPkg {
				continue
			}
			dot := strings.LastIndexByte(pkg, '.')
			if dot < 0 {
				return in.NewExc("ImportError", "attempted relative import beyond top-level package")
			}
			pkg = pkg[:dot]
		}
		if target == "" {
			target = pkg
		} else {
			target = pkg + "." + target
		}
	}
	mod, err := in.Import(target)
	if err != nil {
		return err
	}
	if v.Star {
		return in.importStar(fr, mod)
	}
	for _, alias := range v.Names {
		val, ok := mod.Dict.Get(alias.Name)
		if !ok {
			// Fall back to importing a submodule, as CPython does for
			// "from pkg import submodule".
			sub, subErr := in.Import(target + "." + alias.Name)
			if subErr != nil {
				return in.NewExc("ImportError", "cannot import name '%s' from '%s'", alias.Name, target)
			}
			val = sub
		}
		bound := alias.Name
		if alias.AsName != "" {
			bound = alias.AsName
		}
		in.bind(fr, bound, val)
	}
	return nil
}

func (in *Interp) importStar(fr *frame, mod *ModuleV) *PyErr {
	// Respect __all__ when present.
	if allV, ok := mod.Dict.Get("__all__"); ok {
		if lst, ok := allV.(*ListV); ok {
			for _, nameV := range lst.Elems {
				name, ok := nameV.(StrV)
				if !ok {
					return in.NewExc("TypeError", "__all__ items must be strings")
				}
				val, ok := mod.Dict.Get(string(name))
				if !ok {
					return in.NewExc("AttributeError", "module '%s' has no attribute '%s' (via __all__)", mod.Name, name)
				}
				in.bind(fr, string(name), val)
			}
			return nil
		}
	}
	for _, name := range mod.Dict.Names() {
		if strings.HasPrefix(name, "_") {
			continue
		}
		v, _ := mod.Dict.Get(name)
		in.bind(fr, name, v)
	}
	return nil
}

// MagicAttrs is the set of module attributes excluded from Delta Debugging
// (§6.3 of the paper: "all the magic attributes of the module ... are
// excluded from DD").
var MagicAttrs = map[string]bool{
	"__name__": true, "__file__": true, "__doc__": true,
	"__package__": true, "__loader__": true, "__spec__": true,
	"__all__": true, "__version__": true, "__path__": true,
}
