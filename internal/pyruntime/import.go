package pyruntime

import (
	"strings"

	"repro/internal/pylang"
	"repro/internal/pyparser"
)

// Module search roots, in order. Application code lives at the image root;
// third-party libraries live under site-packages (which is the directory
// λ-trim's debloater rewrites).
var searchRoots = []string{"", "site-packages/"}

// SitePackages is the prefix for library code inside a deployment image.
const SitePackages = "site-packages/"

// Import loads a dotted module name, executing each package on the path
// root-first, exactly like CPython: "import a.b.c" ensures a, a.b and a.b.c
// are all in the module table, and returns the leaf module.
func (in *Interp) Import(dotted string) (*ModuleV, *PyErr) {
	parts := strings.Split(dotted, ".")
	var mod *ModuleV
	prefix := ""
	for i, part := range parts {
		if prefix == "" {
			prefix = part
		} else {
			prefix = prefix + "." + part
		}
		m, err := in.importOne(prefix)
		if err != nil {
			return nil, err
		}
		// Bind the submodule as an attribute of its parent package.
		if i > 0 {
			parentName := strings.Join(parts[:i], ".")
			parent := in.modules[parentName]
			if parent != nil {
				if _, exists := parent.Dict.Get(part); !exists {
					in.Alloc.Alloc(64)
				}
				parent.Dict.Set(part, m)
				in.noteBinding(parentName, part, prefix)
			}
		}
		mod = m
	}
	return mod, nil
}

// importOne loads a single fully-qualified module (all parents loaded).
// When a snapshot cache is attached, the call is an import "window": a
// validated cache entry replays the whole window (including nested imports)
// without re-interpreting, and a miss records the window for later replay.
func (in *Interp) importOne(name string) (*ModuleV, *PyErr) {
	if m, ok := in.modules[name]; ok {
		in.noteLoadedDep(name)
		return m, nil
	}
	for _, active := range in.importStack {
		if active == name {
			// Cyclic import: return the partially-initialized module, as
			// CPython does.
			if m, ok := in.modules[name]; ok {
				return m, nil
			}
		}
	}

	src, found := in.resolveSourceCached(name)
	if !found {
		return nil, in.NewExc("ModuleNotFoundError", "No module named '%s'", name)
	}

	var rec *snapRecorder
	volatile := false
	if in.snapActive() {
		if in.volatile[name] {
			// Probe-specific content (see SetVolatile): execute live, record
			// nothing, and stop the enclosing windows from capturing.
			volatile = true
			in.poisonOpenWindows()
		} else {
			fp := in.moduleFP(name, src)
			if entry := in.snap.lookup(in, name, fp); entry != nil {
				return in.replayEntry(entry), nil
			}
			rec = in.beginWindow(name, fp)
		}
	}

	body, file, codeMod := in.moduleBody(name, src)

	mod := &ModuleV{Name: name, Dict: NewNamespace(), File: file}
	in.Alloc.Alloc(SizeOf(mod))
	mod.Dict.Set("__name__", StrV(name))
	mod.Dict.Set("__file__", StrV(file))
	in.modules[name] = mod
	in.importStack = append(in.importStack, name)
	if rec != nil {
		in.noteCreated(name, rec.bodyFP)
	}

	for _, h := range in.hooks {
		h.BeforeModuleExec(name)
	}
	fr := &frame{globals: mod.Dict, module: name}
	_, err := in.execBody(fr, body, codeMod)
	for _, h := range in.hooks {
		if err != nil {
			h.AfterModuleExec(name, err)
		} else {
			h.AfterModuleExec(name, nil)
		}
	}
	in.importStack = in.importStack[:len(in.importStack)-1]
	if rec != nil {
		in.endWindow(rec, err)
	} else if volatile && err == nil {
		// Publish an unmatchable state fingerprint: entries that record a
		// dependency on this module must never validate in another run.
		in.sfp[name] = newPoison()
	}
	if err != nil {
		delete(in.modules, name)
		return nil, err
	}
	return mod, nil
}

// moduleSource is a resolved module origin: either a debloater AST override
// or raw file source. It carries enough to fingerprint the module body
// without parsing it.
type moduleSource struct {
	override *pylang.Module // non-nil for overrides
	path     string
	src      string // file source (empty for overrides)
}

// fsResolved is the image-level memo of a file-backed module resolution,
// stored in the FS derived cache so every oracle-run interpreter over the
// same image shares one search-root walk per name.
type fsResolved struct {
	path string
	src  string
	ok   bool
}

// resolveSourceCached locates a dotted name through two cache layers: the
// per-interpreter srcCache (which also covers debloater overrides) and the
// image-level derived cache for plain files. The importer and the snapshot
// validator both resolve the same names many times per run, and a fresh
// interpreter is spawned per oracle run over an unchanging image.
func (in *Interp) resolveSourceCached(name string) (moduleSource, bool) {
	if e, hit := in.srcCache[name]; hit {
		return e.src, e.ok
	}
	var src moduleSource
	var ok bool
	if ast, hasOv := in.overrides[name]; hasOv {
		src, ok = moduleSource{override: ast, path: "<override:" + name + ">"}, true
	} else if v, hit := in.FS.DerivedGet("resolve\x00" + name); hit {
		r := v.(fsResolved)
		src, ok = moduleSource{path: r.path, src: r.src}, r.ok
	} else {
		src, ok = in.resolveFile(name)
		in.FS.DerivedPut("resolve\x00"+name, fsResolved{path: src.path, src: src.src, ok: ok})
	}
	if in.srcCache == nil {
		in.srcCache = make(map[string]srcCacheEnt)
	}
	in.srcCache[name] = srcCacheEnt{src: src, ok: ok}
	return src, ok
}

// moduleFP returns the body fingerprint for a name resolved through
// resolveSourceCached. File-backed fingerprints are memoized on the image
// (shared by all runs); override fingerprints stay per-interpreter.
func (in *Interp) moduleFP(name string, src moduleSource) string {
	if e, hit := in.srcCache[name]; hit && e.fpDone {
		return e.fp
	}
	var fp string
	if src.override == nil {
		if v, hit := in.FS.DerivedGet("modfp\x00" + name); hit {
			fp = v.(string)
		} else {
			fp = in.bodyFingerprint(src)
			in.FS.DerivedPut("modfp\x00"+name, fp)
		}
	} else {
		fp = in.bodyFingerprint(src)
	}
	in.srcCache[name] = srcCacheEnt{src: src, ok: true, fp: fp, fpDone: true}
	return fp
}

// resolveFile finds a name under the search roots as either pkg/mod.py or
// pkg/mod/__init__.py. Overrides are handled by resolveSourceCached.
func (in *Interp) resolveFile(name string) (moduleSource, bool) {
	rel := strings.ReplaceAll(name, ".", "/")
	for _, root := range searchRoots {
		for _, candidate := range []string{root + rel + ".py", root + rel + "/__init__.py"} {
			src, err := in.FS.Read(candidate)
			if err != nil {
				continue
			}
			return moduleSource{path: candidate, src: src}, true
		}
	}
	return moduleSource{}, false
}

// moduleBody parses a resolved source into an executable body. The returned
// *pylang.Module, when non-nil, is a stable node the compiled engine may key
// its code cache on (overrides persist across oracle runs; parsed modules
// live in the shared parse cache); synthetic error bodies return nil.
func (in *Interp) moduleBody(name string, src moduleSource) ([]pylang.Stmt, string, *pylang.Module) {
	if src.override != nil {
		return src.override.Body, src.path, src.override
	}
	mod, perr := in.parseCached(src.path, name, src.src)
	if perr != nil {
		// Surface parse errors as a module body that raises; the importer
		// converts it into an ImportError.
		return []pylang.Stmt{&pylang.RaiseStmt{
			Value: &pylang.CallExpr{
				Func: &pylang.NameExpr{Name: "ImportError"},
				Args: []pylang.Expr{&pylang.StringLit{Value: perr.Error()}},
			},
		}}, src.path, nil
	}
	return mod.Body, src.path, mod
}

func (in *Interp) parseCached(path, name, src string) (*pylang.Module, error) {
	// Key by content hash when the file is in the image: the cache is shared
	// across interpreters and apps, and hashing once per image beats
	// building (and hashing) a path+source map key on every import.
	key := path + "\x00" + src
	if h, ok := in.FS.ContentHash(path); ok {
		key = path + "\x00" + h
	}
	if m, ok := in.astCache.Get(key); ok {
		return m, nil
	}
	mod, err := pyparser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	in.astCache.Put(key, mod)
	return mod, nil
}

// execFromImport implements "from X import a, b" including relative levels
// and star imports.
func (in *Interp) execFromImport(fr *frame, v *pylang.FromImportStmt) *PyErr {
	target := v.Module
	if v.Level > 0 {
		pkg := fr.module
		// A package's own __init__ executes with module name == package, so
		// one level strips nothing extra for it; for plain modules a level
		// strips the final component. We approximate CPython by treating
		// the current module as a package iff its file is an __init__.
		isPkg := false
		if m, ok := in.modules[fr.module]; ok {
			isPkg = strings.HasSuffix(m.File, "__init__.py") || strings.HasPrefix(m.File, "<override:")
		}
		for i := 0; i < v.Level; i++ {
			if i == 0 && isPkg {
				continue
			}
			dot := strings.LastIndexByte(pkg, '.')
			if dot < 0 {
				return in.NewExc("ImportError", "attempted relative import beyond top-level package")
			}
			pkg = pkg[:dot]
		}
		if target == "" {
			target = pkg
		} else {
			target = pkg + "." + target
		}
	}
	mod, err := in.Import(target)
	if err != nil {
		return err
	}
	if v.Star {
		return in.importStar(fr, mod)
	}
	for _, alias := range v.Names {
		val, ok := mod.Dict.Get(alias.Name)
		if !ok {
			// Fall back to importing a submodule, as CPython does for
			// "from pkg import submodule".
			sub, subErr := in.Import(target + "." + alias.Name)
			if subErr != nil {
				return in.NewExc("ImportError", "cannot import name '%s' from '%s'", alias.Name, target)
			}
			val = sub
		}
		bound := alias.Name
		if alias.AsName != "" {
			bound = alias.AsName
		}
		in.bind(fr, bound, val)
	}
	return nil
}

func (in *Interp) importStar(fr *frame, mod *ModuleV) *PyErr {
	// Respect __all__ when present.
	if allV, ok := mod.Dict.Get("__all__"); ok {
		if lst, ok := allV.(*ListV); ok {
			for _, nameV := range lst.Elems {
				name, ok := nameV.(StrV)
				if !ok {
					return in.NewExc("TypeError", "__all__ items must be strings")
				}
				val, ok := mod.Dict.Get(string(name))
				if !ok {
					return in.NewExc("AttributeError", "module '%s' has no attribute '%s' (via __all__)", mod.Name, name)
				}
				in.bind(fr, string(name), val)
			}
			return nil
		}
	}
	for _, name := range mod.Dict.Names() {
		if strings.HasPrefix(name, "_") {
			continue
		}
		v, _ := mod.Dict.Get(name)
		in.bind(fr, name, v)
	}
	return nil
}

// MagicAttrs is the set of module attributes excluded from Delta Debugging
// (§6.3 of the paper: "all the magic attributes of the module ... are
// excluded from DD").
var MagicAttrs = map[string]bool{
	"__name__": true, "__file__": true, "__doc__": true,
	"__package__": true, "__loader__": true, "__spec__": true,
	"__all__": true, "__version__": true, "__path__": true,
}
