package pyruntime

import (
	"strings"
	"testing"

	"repro/internal/pyparser"
	"repro/internal/vfs"
)

// runProgram executes src as module __main__ over the given extra files and
// returns stdout. Fatal on any error.
func runProgram(t *testing.T, src string, files map[string]string) (string, *Interp) {
	t.Helper()
	fs := vfs.New()
	for path, content := range files {
		fs.Write(path, content)
	}
	in := New(fs)
	mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
	mod.Dict.Set("__name__", StrV("__main__"))
	parsed, err := pyparser.Parse("__main__", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if perr := in.RunModule(mod, parsed.Body); perr != nil {
		t.Fatalf("run: %v", perr)
	}
	return in.OutputString(), in
}

// runExpectErr executes src and returns the raised PyErr (fatal if none).
func runExpectErr(t *testing.T, src string) *PyErr {
	t.Helper()
	return runExpectErrFiles(t, src, nil)
}

// runExpectErrFiles is runExpectErr with extra image files.
func runExpectErrFiles(t *testing.T, src string, files map[string]string) *PyErr {
	t.Helper()
	fs := vfs.New()
	for path, content := range files {
		fs.Write(path, content)
	}
	in := New(fs)
	mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
	parsed, err := pyparser.Parse("__main__", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	perr := in.RunModule(mod, parsed.Body)
	if perr == nil {
		t.Fatalf("expected error, got none; output=%q", in.OutputString())
	}
	return perr
}

func expectOutput(t *testing.T, src, want string) {
	t.Helper()
	got, _ := runProgram(t, src, nil)
	if got != want {
		t.Errorf("output mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestArithmetic(t *testing.T) {
	expectOutput(t, `
x = 2 + 3 * 4
print(x)
print(7 // 2, 7 % 2, -7 // 2, -7 % 2)
print(2 ** 10)
print(1 / 4)
print(10 - 3 - 2)
`, "14\n3 1 -4 1\n1024\n0.25\n5\n")
}

func TestStringsAndFormatting(t *testing.T) {
	expectOutput(t, `
s = "hello" + " " + "world"
print(s.upper())
print(s.split(" "))
print("-".join(["a", "b", "c"]))
print("value: %d, pi: %.2f, name: %s" % (42, 3.14159, "x"))
print("abc" * 3)
print(len(s))
`, "HELLO WORLD\n['hello', 'world']\na-b-c\nvalue: 42, pi: 3.14, name: x\nabcabcabc\n11\n")
}

func TestControlFlow(t *testing.T) {
	expectOutput(t, `
total = 0
for i in range(10):
    if i % 2 == 0:
        continue
    if i > 7:
        break
    total += i
print(total)

n = 0
while n < 5:
    n += 1
else:
    print("done", n)
`, "16\ndone 5\n")
}

func TestFunctionsAndClosures(t *testing.T) {
	expectOutput(t, `
def make_adder(n):
    def add(x):
        return x + n
    return add

add5 = make_adder(5)
print(add5(10))

def greet(name, greeting="hi"):
    return greeting + ", " + name

print(greet("bob"))
print(greet("alice", greeting="hello"))

f = lambda a, b: a * b
print(f(6, 7))
`, "15\nhi, bob\nhello, alice\n42\n")
}

func TestClasses(t *testing.T) {
	expectOutput(t, `
class Animal:
    def __init__(self, name):
        self.name = name
    def speak(self):
        return self.name + " makes a sound"

class Dog(Animal):
    def speak(self):
        return self.name + " barks"

a = Animal("cat")
d = Dog("rex")
print(a.speak())
print(d.speak())
print(isinstance(d, Animal), isinstance(a, Dog))
`, "cat makes a sound\nrex barks\nTrue False\n")
}

func TestExceptions(t *testing.T) {
	expectOutput(t, `
try:
    x = 1 / 0
except ZeroDivisionError as e:
    print("caught:", e.args[0])

try:
    raise ValueError("bad value")
except (TypeError, ValueError) as e:
    print("ve:", e.args[0])
finally:
    print("finally ran")

def risky():
    try:
        raise KeyError("k")
    except ValueError:
        print("wrong handler")
    finally:
        print("inner finally")

try:
    risky()
except KeyError:
    print("outer caught")
`, "caught: division by zero\nve: bad value\nfinally ran\ninner finally\nouter caught\n")
}

func TestAttributeError(t *testing.T) {
	perr := runExpectErr(t, `
class C:
    pass
c = C()
c.missing
`)
	if perr.ClassName() != "AttributeError" {
		t.Errorf("expected AttributeError, got %s", perr.ClassName())
	}
}

func TestContainers(t *testing.T) {
	expectOutput(t, `
d = {"a": 1, "b": 2}
d["c"] = 3
print(d)
print(d.get("a"), d.get("z", -1))
print(sorted(d.keys()))
lst = [3, 1, 2]
lst.append(0)
lst.sort()
print(lst)
print(lst[1:3])
t = (1, 2, 3)
a, b, c = t
print(a + b + c)
print(sum([1, 2, 3.5]))
print(list(enumerate(["x", "y"])))
`, "{'a': 1, 'b': 2, 'c': 3}\n1 -1\n['a', 'b', 'c']\n[0, 1, 2, 3]\n[1, 2]\n6\n6.5\n[(0, 'x'), (1, 'y')]\n")
}

func TestImports(t *testing.T) {
	files := map[string]string{
		"site-packages/mylib/__init__.py": `
from .util import helper
VERSION = "1.0"
def top():
    return "top"
`,
		"site-packages/mylib/util.py": `
def helper():
    return "helped"
`,
	}
	out, in := runProgram(t, `
import mylib
from mylib import top
from mylib.util import helper as h
print(mylib.VERSION)
print(mylib.helper())
print(top())
print(h())
import mylib.util
print(mylib.util.helper())
`, files)
	want := "1.0\nhelped\ntop\nhelped\nhelped\n"
	if out != want {
		t.Errorf("output:\n got %q\nwant %q", out, want)
	}
	if _, ok := in.Modules()["mylib"]; !ok {
		t.Error("mylib not in module table")
	}
	if _, ok := in.Modules()["mylib.util"]; !ok {
		t.Error("mylib.util not in module table")
	}
}

func TestImportCaching(t *testing.T) {
	files := map[string]string{
		"site-packages/once.py": `print("side effect")`,
	}
	out, _ := runProgram(t, `
import once
import once
from once import *
`, files)
	if strings.Count(out, "side effect") != 1 {
		t.Errorf("module executed %d times, want 1", strings.Count(out, "side effect"))
	}
}

func TestImportError(t *testing.T) {
	perr := runExpectErr(t, `import does_not_exist`)
	if perr.ClassName() != "ModuleNotFoundError" {
		t.Errorf("expected ModuleNotFoundError, got %s", perr.ClassName())
	}
}

func TestImportHooks(t *testing.T) {
	files := map[string]string{
		"site-packages/a/__init__.py": `import b`,
		"site-packages/b.py":          `x = 1`,
	}
	fs := vfs.New()
	for p, c := range files {
		fs.Write(p, c)
	}
	in := New(fs)
	var events []string
	in.AddImportHook(hookFunc{
		before: func(name string) { events = append(events, "before:"+name) },
		after:  func(name string, err error) { events = append(events, "after:"+name) },
	})
	if _, err := in.Import("a"); err != nil {
		t.Fatalf("import: %v", err)
	}
	want := []string{"before:a", "before:b", "after:b", "after:a"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

type hookFunc struct {
	before func(string)
	after  func(string, error)
}

func (h hookFunc) BeforeModuleExec(name string)           { h.before(name) }
func (h hookFunc) AfterModuleExec(name string, err error) { h.after(name, err) }

func TestVirtualClockAndAlloc(t *testing.T) {
	_, in := runProgram(t, `
load_native(100, 50)
buf = native_alloc(10)
compute(5)
`, nil)
	if ms := in.Clock.Now().Milliseconds(); ms < 105 {
		t.Errorf("clock = %dms, want >= 105ms", ms)
	}
	if mb := in.Alloc.Used() >> 20; mb < 60 {
		t.Errorf("alloc = %dMB, want >= 60MB", mb)
	}
}

func TestRemoteCallJournal(t *testing.T) {
	_, in := runProgram(t, `
resp = remote_call("s3", "put_object", {"bucket": "b", "key": "k"})
print(resp["status"])
`, nil)
	if len(in.RemoteLog) != 1 {
		t.Fatalf("remote log length = %d, want 1", len(in.RemoteLog))
	}
	rc := in.RemoteLog[0]
	if rc.Service != "s3" || rc.Op != "put_object" {
		t.Errorf("remote call = %+v", rc)
	}
}

func TestGlobalStatement(t *testing.T) {
	expectOutput(t, `
counter = 0
def bump():
    global counter
    counter += 1
bump()
bump()
print(counter)
`, "2\n")
}

func TestDelAndHasattr(t *testing.T) {
	expectOutput(t, `
class C:
    pass
c = C()
c.x = 1
print(hasattr(c, "x"))
del c.x
print(hasattr(c, "x"))
print(getattr(c, "x", "fallback"))
`, "True\nFalse\nfallback\n")
}

func TestFromImportStar(t *testing.T) {
	files := map[string]string{
		"site-packages/starlib.py": `
__all__ = ["visible"]
def visible():
    return "v"
def hidden():
    return "h"
`,
	}
	fs := vfs.New()
	for p, c := range files {
		fs.Write(p, c)
	}
	in := New(fs)
	mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
	parsed, _ := pyparser.Parse("__main__", "from starlib import *\nprint(visible())")
	if perr := in.RunModule(mod, parsed.Body); perr != nil {
		t.Fatalf("run: %v", perr)
	}
	if _, ok := mod.Dict.Get("hidden"); ok {
		t.Error("hidden leaked through __all__-filtered star import")
	}
}

func TestFuelExhaustion(t *testing.T) {
	fs := vfs.New()
	in := New(fs)
	in.SetFuel(1000)
	mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
	parsed, _ := pyparser.Parse("__main__", "while True:\n    pass")
	perr := in.RunModule(mod, parsed.Body)
	if perr == nil {
		t.Fatal("expected fuel exhaustion error")
	}
	if !strings.Contains(perr.Error(), "budget") {
		t.Errorf("error = %v, want budget exhaustion", perr)
	}
}

func TestRecursionLimit(t *testing.T) {
	perr := runExpectErr(t, `
def f():
    return f()
f()
`)
	if perr.ClassName() != "RecursionError" {
		t.Errorf("expected RecursionError, got %s", perr.ClassName())
	}
}

func TestCallFunctionAPI(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", `
def handler(event, context):
    return event["n"] + 1
`)
	in := New(fs)
	mod, perr := in.Import("handler")
	if perr != nil {
		t.Fatalf("import: %v", perr)
	}
	fn, ok := mod.Dict.Get("handler")
	if !ok {
		t.Fatal("handler not defined")
	}
	event := NewDict()
	event.SetStr("n", IntV(41))
	res, perr := in.CallFunction(fn, []Value{event, None})
	if perr != nil {
		t.Fatalf("call: %v", perr)
	}
	if iv, ok := res.(IntV); !ok || iv != 42 {
		t.Errorf("result = %v, want 42", Repr(res))
	}
}

func TestConditionalExprAndBoolOps(t *testing.T) {
	expectOutput(t, `
x = 5
print("big" if x > 3 else "small")
print(x > 0 and x < 10)
print(None or "default")
print(not [])
print(1 < x < 10)
`, "big\nTrue\ndefault\nTrue\nTrue\n")
}

func TestChainedComparisonShortCircuit(t *testing.T) {
	expectOutput(t, `
def loud(v):
    print("eval", v)
    return v
print(loud(1) > loud(2) > loud(3))
`, "eval 1\neval 2\nFalse\n")
}
