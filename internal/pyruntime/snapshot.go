package pyruntime

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pylang"
)

// This file implements content-addressed import memoization: the import of a
// module (its "window": the importOne call, inclusive of every nested import)
// is recorded once and replayed on later runs whose relevant state matches.
// Replay advances the virtual clock, allocator, fuel and id() counter by the
// recorded deltas, re-emits the recorded stdout and remote-call journal, and
// installs a deep clone of the created module namespaces — so every simulated
// observable is byte-identical to live execution, and only real wall-clock
// time changes.
//
// Soundness rests on content addressing. An entry is keyed by the importing
// module's name plus a fingerprint of its source (override AST or file
// bytes), and validated against the current interpreter state: every module
// created inside the window must resolve to identically-fingerprinted source,
// and every already-loaded module read by the window must carry the same
// state fingerprint (sfp) it had at record time. A module's sfp is derived
// from its own source fingerprint plus the ordered dependency events of its
// window, so matching sfps pin the whole transitive state the window saw.
// Post-import mutation of a module namespace bumps its sfp to a unique
// "poison" value, invalidating any entry that depended on the old state.
//
// Residual contract (documented in DESIGN.md): module bodies must not mutate
// container/instance/class state owned by previously-imported modules at
// import time, and values shared across modules must be reachable as
// top-level attributes of their owning module (the corpus satisfies both;
// the golden determinism test enforces byte-identity end to end).

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

// snapEntriesPerKey bounds the entries kept per (name, body fingerprint) key.
// Delta Debugging churns the candidate module's override, so the entry
// module's key accumulates one entry per candidate; FIFO eviction only costs
// a re-execution, never correctness.
const snapEntriesPerKey = 8

// SnapshotStats reports cache effectiveness and occupancy.
type SnapshotStats struct {
	Hits      int64
	Misses    int64
	Entries   int64 // live entries across all keys
	Evictions int64 // cumulative FIFO evictions
}

// SnapshotCache memoizes module import windows across interpreter instances.
// It is safe for concurrent use: entries are immutable after insertion and
// replay clones fresh runtime objects per interpreter, so a cache may be
// shared across the goroutines of a parallel DD session and across the apps
// of a corpus-parallel debloat.
type SnapshotCache struct {
	mu        sync.RWMutex
	m         map[string][]*snapEntry
	hits      atomic.Int64
	misses    atomic.Int64
	entries   atomic.Int64
	evictions atomic.Int64
}

// NewSnapshotCache returns an empty snapshot cache.
func NewSnapshotCache() *SnapshotCache {
	return &SnapshotCache{m: make(map[string][]*snapEntry)}
}

// Stats returns cumulative hit/miss counts.
func (sc *SnapshotCache) Stats() SnapshotStats {
	if sc == nil {
		return SnapshotStats{}
	}
	return SnapshotStats{
		Hits:      sc.hits.Load(),
		Misses:    sc.misses.Load(),
		Entries:   sc.entries.Load(),
		Evictions: sc.evictions.Load(),
	}
}

func (sc *SnapshotCache) lookup(in *Interp, name, bodyFP string) *snapEntry {
	key := name + "\x00" + bodyFP
	sc.mu.RLock()
	entries := sc.m[key]
	// Newest first: later entries were recorded against more recent module
	// states (e.g. the current override stack) and validate far more often.
	// Validation only reads interpreter and entry state, so it can run under
	// the read lock, which also makes the slice safe to iterate in place.
	for i := len(entries) - 1; i >= 0; i-- {
		if e := entries[i]; in.validateEntry(e) {
			sc.mu.RUnlock()
			sc.hits.Add(1)
			return e
		}
	}
	sc.mu.RUnlock()
	sc.misses.Add(1)
	return nil
}

func (sc *SnapshotCache) insert(e *snapEntry) {
	key := e.name + "\x00" + e.bodyFP
	sc.mu.Lock()
	defer sc.mu.Unlock()
	list := sc.m[key]
	for _, old := range list {
		if old.sfp == e.sfp {
			return // same state: concurrent or repeated record, keep first
		}
	}
	// Evict oldest-first until the new entry fits. Dropping a single entry
	// unconditionally only keeps the invariant when lists never exceed the
	// cap by more than one; a loop holds len <= snapEntriesPerKey for every
	// interleaving of inserts (and across cap changes).
	if over := len(list) - (snapEntriesPerKey - 1); over > 0 {
		list = append(list[:0:0], list[over:]...)
		sc.entries.Add(int64(-over))
		sc.evictions.Add(int64(over))
	}
	sc.m[key] = append(list, e)
	sc.entries.Add(1)
}

// ---------------------------------------------------------------------------
// Entry model
// ---------------------------------------------------------------------------

// depEvent is one dependency observation inside a window, in program order:
// 'c' — a module was created (fp = its body fingerprint),
// 'l' — an already-loaded module was returned (fp = its sfp at that moment),
// 'p' — a partially-initialized module on the import stack was returned
// (cyclic import; recorded only when the module belongs to the window).
type depEvent struct {
	kind byte
	name string
	fp   string
}

// snapBinding records the Import loop binding a submodule as an attribute of
// a parent package that pre-existed the window. childSfp is the child's sfp
// at bind time, so the parent's sfp chain update replays identically.
type snapBinding struct {
	parent, attr, child string
	childSfp            string
}

// snapWant is a pre-replay existence check: a pre-existing module (and
// optionally one of its top-level attributes) the captured graph references.
type snapWant struct {
	mod, attr string
}

// snapModule is one module created inside the window, in creation order.
type snapModule struct {
	name string
	file string
	sfp  string
	dict *snapNS
}

// snapEntry is one recorded import window.
type snapEntry struct {
	name   string
	bodyFP string
	sfp    string // window module's state fingerprint

	events   []depEvent
	bindings []snapBinding
	wants    []snapWant
	mods     []snapModule
	nodes    int // cloned-node count at capture; pre-sizes the replay memo

	clockDelta   time.Duration
	allocNet     int64
	allocPeakOff int64
	stmts        int64 // fuel consumed
	idDelta      int64
	usedID       bool
	idStart      int64
	stdout       string
	remote       []RemoteCall
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

func hashStrings(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// astFPMemo memoizes override fingerprints per AST pointer (trees are
// immutable once built). It stays bounded because Delta Debugging
// candidates are marked volatile and never reach the fingerprint path: the
// only ASTs hashed here are stable accepted reductions, one per debloated
// module, whose pointers repeat across the remaining oracle runs.
var astFPMemo sync.Map // *pylang.Module -> string

func astFingerprint(m *pylang.Module) string {
	if s, ok := astFPMemo.Load(m); ok {
		return s.(string)
	}
	s := hashStrings("ast", pylang.Print(m))
	astFPMemo.Store(m, s)
	return s
}

// bodyFingerprint content-addresses a module source resolved by
// resolveSource, without parsing it. File content digests are memoized on
// the image itself (vfs.FS.ContentHash), so repeated oracle runs against
// the same image hash each file once, not once per run.
func (in *Interp) bodyFingerprint(src moduleSource) string {
	if src.override != nil {
		return astFingerprint(src.override)
	}
	if h, ok := in.FS.ContentHash(src.path); ok {
		return hashStrings("file", src.path, h)
	}
	// File vanished between resolution and fingerprinting: hash the
	// resolved source directly (distinct inputs can only produce distinct
	// fingerprints, so a missed cache hit is the worst case).
	return hashStrings("file", src.path, src.src)
}

// poisonSeq makes every poison value process-unique, so a stale sfp can only
// ever match the exact captured state that recorded it.
var poisonSeq atomic.Int64

func newPoison() string {
	return fmt.Sprintf("!poison:%d", poisonSeq.Add(1))
}

// sfpHash derives a module's state fingerprint from its identity, source and
// ordered window events. Windows that consumed id() tokens fold the counter
// start in, because the absolute tokens are embedded in the resulting state.
func sfpHash(name, bodyFP string, events []depEvent, idStart, idDelta int64) string {
	h := sha256.New()
	h.Write([]byte("sfp\x00" + name + "\x00" + bodyFP + "\x00"))
	for _, ev := range events {
		h.Write([]byte{ev.kind})
		h.Write([]byte(ev.name))
		h.Write([]byte{0})
		h.Write([]byte(ev.fp))
		h.Write([]byte{0})
	}
	if idDelta != 0 {
		fmt.Fprintf(h, "id%d", idStart)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func bindHash(parentSfp, attr, childSfp string) string {
	return hashStrings("bind", parentSfp, attr, childSfp)
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

// snapRecorder tracks one open import window.
type snapRecorder struct {
	name   string
	bodyFP string
	bad    bool // window observed something it cannot replay

	// noInsert marks a window that imported a volatile module (a Delta
	// Debugging candidate, see SetVolatile): it records no events and will
	// not be captured, since its contents change on every probe and a
	// cached entry could never validate again. Nested windows opened after
	// the volatile import still record and insert normally.
	noInsert bool

	created    []string // modules created in-window, creation order
	createdSet map[string]bool
	events     []depEvent
	bindings   []snapBinding

	// Adoption: immutable snapshot nodes already built for in-window
	// modules by a nested entry (captured or replayed). Capture reuses
	// them instead of re-cloning the runtime graph, so each module's
	// namespace is cloned at most once per process-wide record, not once
	// per enclosing window. A module whose namespace is legally mutated
	// after its window closes (Import-loop submodule binding, or a
	// poisoning setattr the window itself contains) drops its adoption and
	// falls back to a live clone.
	//
	// The node mappings are kept as references to the nested installs'
	// and captures' own maps (adoptedMaps) and merged only if this window
	// actually captures: replays are ~100x more frequent than captures, so
	// copying (and for replays, inverting) the maps eagerly on every adopt
	// would dominate the replay fast path.
	adopted      map[string]snapAdoption
	adoptedMaps  []adoptedNodeMap
	adoptedWants []snapWant
	droppedDicts map[*Namespace]bool // revoked adoptions, skipped at merge

	clockStart  time.Duration
	usedStart   int64
	peakStart   int64
	fuelStart   int64
	idStart     int64
	stdoutStart int
	remoteStart int
}

// snapAdoption links an in-window module to its nested entry's snapshot,
// keeping the live namespace handle so a later mutation can revoke the
// adoption (and its node mapping) precisely.
type snapAdoption struct {
	sm   *snapModule
	dict *Namespace
}

// adoptedNodeMap is a borrowed node mapping from a nested install or
// capture. rtToNode reports the key direction: capture memos map runtime
// object -> node, install memos map node -> runtime object.
type adoptedNodeMap struct {
	m        map[any]any
	rtToNode bool
}

// adopt records a nested entry's modules, node mapping, and wants. The
// mapping is borrowed, not copied — see the adoptedMaps field comment. The
// borrowed map must not be mutated afterwards (both donors are done with
// theirs when they adopt).
func (r *snapRecorder) adopt(e *snapEntry, nodes map[any]any, rtToNode bool, in *Interp) {
	if r.adopted == nil {
		r.adopted = make(map[string]snapAdoption, len(e.mods))
	}
	for i := range e.mods {
		sm := &e.mods[i]
		if mod, ok := in.modules[sm.name]; ok {
			r.adopted[sm.name] = snapAdoption{sm: sm, dict: mod.Dict}
		}
	}
	r.adoptedMaps = append(r.adoptedMaps, adoptedNodeMap{m: nodes, rtToNode: rtToNode})
	r.adoptedWants = append(r.adoptedWants, e.wants...)
}

// dropAdoption reverts a module to live cloning after a post-window
// namespace mutation; deeper values stay adopted (the residual contract
// forbids mutating them at import time).
func (r *snapRecorder) dropAdoption(name string) {
	if a, ok := r.adopted[name]; ok {
		delete(r.adopted, name)
		if r.droppedDicts == nil {
			r.droppedDicts = make(map[*Namespace]bool, 1)
		}
		r.droppedDicts[a.dict] = true
	}
}

// seedCloner merges the borrowed node mappings into a capture's memo so
// already-snapshotted objects are referenced instead of re-cloned. Dicts of
// revoked adoptions are skipped (their namespaces must re-clone live).
func (r *snapRecorder) seedCloner(cl *snapCloner) {
	keep := func(rt any) bool {
		if r.droppedDicts == nil {
			return true
		}
		ns, ok := rt.(*Namespace)
		return !ok || !r.droppedDicts[ns]
	}
	for _, am := range r.adoptedMaps {
		if am.rtToNode {
			for rt, node := range am.m {
				if keep(rt) {
					cl.memo[rt] = node
				}
			}
		} else {
			for node, rt := range am.m {
				if keep(rt) {
					cl.memo[rt] = node
				}
			}
		}
	}
	for _, w := range r.adoptedWants {
		cl.wants[w] = true
	}
}

// snapActive reports whether import windows are being recorded/replayed.
// Hooks disable the machinery (the profiler must observe live execution);
// stdout must be the default builder so output deltas can be captured.
func (in *Interp) snapActive() bool {
	if in.snap == nil || len(in.hooks) != 0 {
		return false
	}
	_, ok := in.Stdout.(*strings.Builder)
	return ok
}

func (in *Interp) beginWindow(name, bodyFP string) *snapRecorder {
	sb := in.Stdout.(*strings.Builder)
	rec := &snapRecorder{
		name:        name,
		bodyFP:      bodyFP,
		createdSet:  make(map[string]bool, 4),
		clockStart:  in.Clock.Now(),
		usedStart:   in.Alloc.Used(),
		peakStart:   in.Alloc.Peak(),
		fuelStart:   in.fuel,
		idStart:     in.idCounter,
		stdoutStart: sb.Len(),
		remoteStart: len(in.RemoteLog),
	}
	in.recStack = append(in.recStack, rec)
	return rec
}

// noteCreated records a module creation on every active window.
func (in *Interp) noteCreated(name, bodyFP string) {
	for _, r := range in.recStack {
		if r.noInsert {
			continue
		}
		r.events = append(r.events, depEvent{kind: 'c', name: name, fp: bodyFP})
		r.created = append(r.created, name)
		r.createdSet[name] = true
	}
}

// poisonOpenWindows marks every open window noInsert; called when a
// volatile module is about to execute inside them.
func (in *Interp) poisonOpenWindows() {
	for _, r := range in.recStack {
		r.noInsert = true
	}
}

// noteLoadedDep records an importOne early return on every active window.
func (in *Interp) noteLoadedDep(name string) {
	if !in.snapActive() || len(in.recStack) == 0 {
		return
	}
	partial := false
	for _, active := range in.importStack {
		if active == name {
			partial = true
			break
		}
	}
	if partial {
		// A partially-initialized module is only replayable when it belongs
		// to the window (the cycle then resolves inside the recorded state).
		for _, r := range in.recStack {
			if r.noInsert {
				continue
			}
			if r.createdSet[name] {
				r.events = append(r.events, depEvent{kind: 'p', name: name})
			} else {
				r.bad = true
			}
		}
		return
	}
	fp, ok := in.sfp[name]
	if !ok {
		// Loaded before snapshots were enabled: state unknown, never match.
		fp = newPoison()
		in.sfp[name] = fp
	}
	for _, r := range in.recStack {
		if r.noInsert {
			continue
		}
		r.events = append(r.events, depEvent{kind: 'l', name: name, fp: fp})
	}
}

// noteBinding records the Import loop binding child into parent, and applies
// the deterministic sfp chain update (identically applied on replay).
func (in *Interp) noteBinding(parent, attr, child string) {
	if in.snap == nil || in.sfp == nil {
		return
	}
	childSfp, ok := in.sfp[child]
	if !ok {
		childSfp = newPoison()
		in.sfp[child] = childSfp
	}
	if _, ok := in.sfp[parent]; ok {
		in.sfp[parent] = bindHash(in.sfp[parent], attr, childSfp)
	}
	for _, r := range in.recStack {
		if r.noInsert {
			continue
		}
		if r.createdSet[parent] {
			// The binding mutates an in-window parent after its own window
			// closed; its adopted snapshot (if any) no longer matches, so
			// capture must re-clone it live.
			r.dropAdoption(parent)
		} else {
			r.bindings = append(r.bindings, snapBinding{parent: parent, attr: attr, child: child, childSfp: childSfp})
		}
	}
}

// notePoisonModule marks a module namespace as mutated after its import
// window closed: windows that did not create it can no longer replay the
// mutation, and its sfp is bumped so dependent entries stop validating.
func (in *Interp) notePoisonModule(name string) {
	if in.snap == nil {
		return
	}
	if n := len(in.recStack); n > 0 && in.recStack[n-1].name == name {
		return // the module's own body is still executing
	}
	for _, r := range in.recStack {
		if r.noInsert {
			continue
		}
		if !r.createdSet[name] {
			r.bad = true
		} else {
			// In-window module mutated after its window closed: the window
			// replays the mutation via its end-state clone, so only the
			// stale adoption must go.
			r.dropAdoption(name)
		}
	}
	if _, ok := in.sfp[name]; ok {
		in.sfp[name] = newPoison()
	}
}

// endWindow closes the innermost window: it publishes the module's sfp and,
// when the window is cleanly replayable, captures and inserts a cache entry.
func (in *Interp) endWindow(rec *snapRecorder, err *PyErr) {
	in.recStack = in.recStack[:len(in.recStack)-1]
	if err != nil {
		// The window's events already leaked into enclosing recorders and
		// the created module is about to be deleted; no enclosing window can
		// be replayed faithfully.
		for _, r := range in.recStack {
			r.bad = true
		}
		return
	}
	if rec.noInsert {
		// The window enclosed a volatile module: its event log is
		// deliberately incomplete, so publish an unmatchable sfp (dependent
		// entries must never validate against this state) and capture
		// nothing.
		in.sfp[rec.name] = newPoison()
		return
	}
	idDelta := in.idCounter - rec.idStart
	sfp := sfpHash(rec.name, rec.bodyFP, rec.events, rec.idStart, idDelta)
	in.sfp[rec.name] = sfp
	if rec.bad {
		return
	}
	entry, nodes := in.captureEntry(rec, sfp, idDelta)
	if entry != nil {
		in.snap.insert(entry)
		// Let the enclosing window reuse this entry's node graph instead of
		// re-cloning the same modules at its own capture.
		if n := len(in.recStack); n > 0 && !in.recStack[n-1].noInsert {
			in.recStack[n-1].adopt(entry, nodes, true, in)
		}
	}
}

func (in *Interp) captureEntry(rec *snapRecorder, sfp string, idDelta int64) (*snapEntry, map[any]any) {
	cl := newSnapCloner(in, rec.createdSet)
	rec.seedCloner(cl)
	mods := make([]snapModule, 0, len(rec.created))
	for _, name := range rec.created {
		mod, ok := in.modules[name]
		if !ok {
			return nil, nil
		}
		if a, ok := rec.adopted[name]; ok {
			// Reuse the nested entry's immutable clone; only the sfp can
			// have moved since (submodule bind chaining).
			sm := *a.sm
			sm.sfp = in.sfp[name]
			mods = append(mods, sm)
			continue
		}
		dictNode, ok := cl.cloneNS(mod.Dict).(*snapNS)
		if !ok {
			return nil, nil
		}
		mods = append(mods, snapModule{name: name, file: mod.File, sfp: in.sfp[name], dict: dictNode})
	}
	if cl.bad {
		return nil, nil
	}
	for _, b := range rec.bindings {
		cl.want(b.parent, "")
		if !rec.createdSet[b.child] {
			cl.want(b.child, "")
		}
	}
	sb := in.Stdout.(*strings.Builder)
	allocNet := in.Alloc.Used() - rec.usedStart
	peakOff := int64(0)
	if peakEnd := in.Alloc.Peak(); peakEnd > rec.peakStart {
		peakOff = peakEnd - rec.usedStart
	}
	if peakOff < allocNet {
		peakOff = allocNet
	}
	if peakOff < 0 {
		peakOff = 0
	}
	e := &snapEntry{
		name:         rec.name,
		bodyFP:       rec.bodyFP,
		sfp:          sfp,
		events:       append([]depEvent(nil), rec.events...),
		bindings:     append([]snapBinding(nil), rec.bindings...),
		wants:        cl.sortedWants(),
		mods:         mods,
		clockDelta:   in.Clock.Now() - rec.clockStart,
		allocNet:     allocNet,
		allocPeakOff: peakOff,
		stmts:        rec.fuelStart - in.fuel,
		idDelta:      idDelta,
		usedID:       idDelta != 0,
		idStart:      rec.idStart,
		stdout:       sb.String()[rec.stdoutStart:],
		remote:       append([]RemoteCall(nil), in.RemoteLog[rec.remoteStart:]...),
		nodes:        len(cl.memo),
	}
	return e, cl.memo
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

// validateEntry checks that replaying e into the current interpreter state
// reproduces exactly what live execution would do.
func (in *Interp) validateEntry(e *snapEntry) bool {
	// Strict inequality: live execution panics when fuel reaches zero, so a
	// window consuming the entire remaining budget is not equivalent.
	if in.fuel <= e.stmts {
		return false
	}
	if e.usedID && in.idCounter != e.idStart {
		return false
	}
	createdSoFar := make(map[string]bool, len(e.mods))
	for i := range e.events {
		ev := &e.events[i]
		switch ev.kind {
		case 'c':
			if createdSoFar[ev.name] {
				return false
			}
			// A volatile module's content is probe-specific: no recorded
			// fingerprint can ever match it, and fingerprinting it here
			// would print the fresh candidate AST on every probe.
			if in.volatile[ev.name] {
				return false
			}
			if _, loaded := in.modules[ev.name]; loaded {
				return false
			}
			src, ok := in.resolveSourceCached(ev.name)
			if !ok || in.moduleFP(ev.name, src) != ev.fp {
				return false
			}
			createdSoFar[ev.name] = true
		case 'l':
			if createdSoFar[ev.name] {
				continue
			}
			if _, loaded := in.modules[ev.name]; !loaded {
				return false
			}
			if in.sfp[ev.name] != ev.fp {
				return false
			}
		case 'p':
			// Recorded only for in-window modules; nothing external to check.
		}
	}
	for _, w := range e.wants {
		m, ok := in.modules[w.mod]
		if !ok {
			return false
		}
		if w.attr != "" {
			if _, ok := m.Dict.Get(w.attr); !ok {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

// replayEntry applies a validated entry: virtual deltas, recorded output and
// side effects, and a fresh deep clone of the created module namespaces.
func (in *Interp) replayEntry(e *snapEntry) *ModuleV {
	in.Clock.Advance(e.clockDelta)
	in.Alloc.Alloc(e.allocPeakOff)
	in.Alloc.Free(e.allocPeakOff - e.allocNet)
	in.fuel -= e.stmts
	in.idCounter += e.idDelta
	if e.stdout != "" {
		io.WriteString(in.Stdout, e.stdout)
	}
	if len(e.remote) > 0 {
		in.RemoteLog = append(in.RemoteLog, e.remote...)
	}

	inst := &snapInstaller{
		in:     in,
		memo:   make(map[any]any, e.nodes+len(e.mods)),
		filled: make(map[*snapNS]bool, len(e.mods)),
	}
	// Phase 1: create every module shell so references resolve during fill.
	for i := range e.mods {
		sm := &e.mods[i]
		mod := &ModuleV{Name: sm.name, Dict: newNamespaceSize(len(sm.dict.names)), File: sm.file}
		in.modules[sm.name] = mod
		inst.memo[sm.dict] = mod.Dict
	}
	// Phase 2: populate namespaces from the captured graph.
	for i := range e.mods {
		inst.ns(e.mods[i].dict)
	}
	for i := range e.mods {
		in.sfp[e.mods[i].name] = e.mods[i].sfp
	}
	// Bindings into pre-existing parent packages, with the same sfp chain
	// updates the live path applied (allocation is covered by the deltas).
	for _, b := range e.bindings {
		if parent, ok := in.modules[b.parent]; ok {
			parent.Dict.Set(b.attr, in.modules[b.child])
		}
		if _, ok := in.sfp[b.parent]; ok {
			in.sfp[b.parent] = bindHash(in.sfp[b.parent], b.attr, b.childSfp)
		}
	}
	// Propagate the window's observable events into enclosing windows,
	// exactly as live execution would have.
	for _, r := range in.recStack {
		if r.noInsert {
			continue
		}
		r.events = append(r.events, e.events...)
		for i := range e.mods {
			r.created = append(r.created, e.mods[i].name)
			r.createdSet[e.mods[i].name] = true
		}
		for _, b := range e.bindings {
			if r.createdSet[b.parent] {
				r.dropAdoption(b.parent)
			} else {
				r.bindings = append(r.bindings, b)
			}
		}
	}
	// The innermost recorder adopts the entry's node graph: the runtime
	// objects this replay just installed map back to the entry's immutable
	// nodes, so the enclosing capture can reference instead of re-clone.
	// The installer memo is borrowed as-is (node -> runtime); the capture
	// inverts it only if it actually happens.
	if n := len(in.recStack); n > 0 && !in.recStack[n-1].noInsert {
		in.recStack[n-1].adopt(e, inst.memo, false, in)
	}
	return in.modules[e.name]
}

// ---------------------------------------------------------------------------
// Capture: runtime graph -> neutral snapshot graph
// ---------------------------------------------------------------------------

// Snapshot node types. Nodes are immutable after capture and shared across
// replays; each replay materializes fresh runtime objects from them.
type (
	snapLit        struct{ v Value }          // scalars and immutable leaves, shared directly
	snapBuiltinRef struct{ name string }      // builtins-registry object, resolved per interp
	snapExcRef     struct{ name string }      // builtin exception class, resolved per interp
	snapModRef     struct{ name string }      // module object, resolved by name
	snapModDictRef struct{ name string }      // pre-existing module's namespace
	snapOriginRef  struct{ mod, attr string } // top-level attr of a pre-existing module
	snapDictPair   struct{ key, val any }
	snapList       struct{ elems []any }
	snapTuple      struct{ elems []any }
	snapDict       struct{ pairs []snapDictPair }
	snapNS         struct {
		names []string
		vals  []any
	}
	snapFunc struct {
		name     string
		params   []pylang.Param
		body     []pylang.Stmt
		expr     pylang.Expr
		module   string
		cost     int64
		code     *funcCode   // shared compiled-body holder; immutable once built
		node     pylang.Node // def/lambda node for deferred holder resolution
		globals  any
		env      any
		defaults []any
	}
	snapClass struct {
		name      string
		base      any
		dict      any
		module    string
		exception bool
	}
	snapInstance struct {
		class any
		dict  any
	}
	snapBound struct {
		recv any
		fn   any
	}
	snapEnv struct {
		names       []string
		vals        []any
		parent      any
		globalNames []string
	}
)

type snapCloner struct {
	in      *Interp
	created map[string]bool
	origin  map[any]any // runtime pointer -> ref node, for pre-existing aliasing
	memo    map[any]any // runtime pointer -> cloned node, preserves aliasing/cycles
	wants   map[snapWant]bool
	bad     bool
}

func newSnapCloner(in *Interp, created map[string]bool) *snapCloner {
	c := &snapCloner{
		in:      in,
		created: created,
		origin:  make(map[any]any),
		memo:    make(map[any]any),
		wants:   make(map[snapWant]bool),
	}
	// Index pre-existing modules' top-level values so aliases into them are
	// captured symbolically (preserving identity with the live originals at
	// replay time). Sorted module order keeps first-wins ties deterministic.
	names := make([]string, 0, len(in.modules))
	for n := range in.modules {
		if !created[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, mn := range names {
		m := in.modules[mn]
		if _, ok := c.origin[m.Dict]; !ok {
			c.origin[m.Dict] = &snapModDictRef{name: mn}
		}
		for _, attr := range m.Dict.Names() {
			v, _ := m.Dict.Get(attr)
			switch v.(type) {
			case NoneV, BoolV, IntV, FloatV, StrV, *RangeV, *NativeBuf, *ModuleV:
				continue
			}
			if _, ok := c.origin[v]; !ok {
				c.origin[v] = &snapOriginRef{mod: mn, attr: attr}
			}
		}
	}
	return c
}

func (c *snapCloner) want(mod, attr string) {
	c.wants[snapWant{mod: mod, attr: attr}] = true
}

func (c *snapCloner) sortedWants() []snapWant {
	out := make([]snapWant, 0, len(c.wants))
	for w := range c.wants {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].mod != out[j].mod {
			return out[i].mod < out[j].mod
		}
		return out[i].attr < out[j].attr
	})
	return out
}

func (c *snapCloner) clone(v Value) any {
	switch v.(type) {
	case nil:
		return nil
	case NoneV, BoolV, IntV, FloatV, StrV:
		return &snapLit{v: v}
	case *RangeV, *NativeBuf:
		// Immutable leaf objects: sharing the pointer across interpreters is
		// unobservable (identity relations within one interp are preserved).
		return &snapLit{v: v}
	}
	if n, ok := c.memo[v]; ok {
		return n
	}
	if name, ok := c.in.builtinPtrName(v); ok {
		return &snapBuiltinRef{name: name}
	}
	switch t := v.(type) {
	case *BuiltinV:
		// A builtin outside the registry is a method closure capturing its
		// receiver; it cannot be re-bound in another interpreter.
		c.bad = true
		return &snapLit{v: None}
	case *ClassV:
		if name, ok := c.in.excPtrName(t); ok {
			return &snapExcRef{name: name}
		}
	case *ModuleV:
		if !c.created[t.Name] {
			c.want(t.Name, "")
		}
		return &snapModRef{name: t.Name}
	}
	if ref, ok := c.origin[v]; ok {
		if o, isOrigin := ref.(*snapOriginRef); isOrigin {
			c.want(o.mod, o.attr)
		}
		return ref
	}
	switch t := v.(type) {
	case *ListV:
		node := &snapList{elems: make([]any, len(t.Elems))}
		c.memo[v] = node
		for i, e := range t.Elems {
			node.elems[i] = c.clone(e)
		}
		return node
	case *TupleV:
		node := &snapTuple{elems: make([]any, len(t.Elems))}
		c.memo[v] = node
		for i, e := range t.Elems {
			node.elems[i] = c.clone(e)
		}
		return node
	case *DictV:
		node := &snapDict{}
		c.memo[v] = node
		for _, kv := range t.Items() {
			node.pairs = append(node.pairs, snapDictPair{key: c.clone(kv[0]), val: c.clone(kv[1])})
		}
		return node
	case *FuncV:
		node := &snapFunc{
			name:   t.Name,
			params: t.Params,
			body:   t.Body,
			expr:   t.Expr,
			module: t.Module,
			cost:   t.Cost,
			code:   t.code,
			node:   t.node,
		}
		c.memo[v] = node
		node.globals = c.cloneNS(t.Globals)
		node.env = c.cloneEnv(t.Env)
		if t.Defaults != nil {
			node.defaults = make([]any, len(t.Defaults))
			for i, d := range t.Defaults {
				if d != nil {
					node.defaults[i] = c.clone(d)
				}
			}
		}
		return node
	case *ClassV:
		node := &snapClass{name: t.Name, module: t.Module, exception: t.Exception}
		c.memo[v] = node
		if t.Base != nil {
			node.base = c.clone(t.Base)
		}
		node.dict = c.cloneNS(t.Dict)
		return node
	case *InstanceV:
		node := &snapInstance{}
		c.memo[v] = node
		node.class = c.clone(t.Class)
		node.dict = c.cloneNS(t.Dict)
		return node
	case *BoundMethodV:
		node := &snapBound{}
		c.memo[v] = node
		node.recv = c.clone(t.Recv)
		node.fn = c.clone(t.Fn)
		return node
	}
	c.bad = true
	return &snapLit{v: None}
}

func (c *snapCloner) cloneNS(ns *Namespace) any {
	if ns == nil {
		return nil
	}
	if n, ok := c.memo[ns]; ok {
		return n
	}
	if ref, ok := c.origin[ns]; ok {
		if d, isDict := ref.(*snapModDictRef); isDict {
			c.want(d.name, "")
		}
		return ref
	}
	node := &snapNS{}
	c.memo[ns] = node
	for _, name := range ns.Names() {
		v, _ := ns.Get(name)
		node.names = append(node.names, name)
		node.vals = append(node.vals, c.clone(v))
	}
	return node
}

func (c *snapCloner) cloneEnv(e *Env) any {
	if e == nil {
		return nil
	}
	if n, ok := c.memo[e]; ok {
		return n
	}
	node := &snapEnv{}
	c.memo[e] = node
	names := make([]string, 0, len(e.vars))
	for name := range e.vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		node.names = append(node.names, name)
		node.vals = append(node.vals, c.clone(e.vars[name]))
	}
	node.parent = c.cloneEnv(e.parent)
	if e.globalNames != nil {
		for name := range e.globalNames {
			node.globalNames = append(node.globalNames, name)
		}
		sort.Strings(node.globalNames)
	}
	return node
}

// builtinPtrName resolves a pointer-typed builtins-registry object back to
// its registry name (lazily indexed; builtins are immutable after New).
func (in *Interp) builtinPtrName(v Value) (string, bool) {
	if in.builtinPtrs == nil {
		in.builtinPtrs = make(map[Value]string)
		for _, name := range in.builtins.Names() {
			bv, _ := in.builtins.Get(name)
			switch bv.(type) {
			case *BuiltinV, *ClassV:
				in.builtinPtrs[bv] = name
			}
		}
	}
	name, ok := in.builtinPtrs[v]
	return name, ok
}

func (in *Interp) excPtrName(c *ClassV) (string, bool) {
	if in.excPtrs == nil {
		in.excPtrs = make(map[*ClassV]string, len(in.excClasses))
		for name, cls := range in.excClasses {
			in.excPtrs[cls] = name
		}
	}
	name, ok := in.excPtrs[c]
	return name, ok
}

// ---------------------------------------------------------------------------
// Install: neutral snapshot graph -> fresh runtime graph
// ---------------------------------------------------------------------------

type snapInstaller struct {
	in     *Interp
	memo   map[any]any
	filled map[*snapNS]bool
}

func (si *snapInstaller) value(n any) Value {
	switch t := n.(type) {
	case nil:
		return nil
	case *snapLit:
		return t.v
	case *snapBuiltinRef:
		v, _ := si.in.builtins.Get(t.name)
		return v
	case *snapExcRef:
		return si.in.excClasses[t.name]
	case *snapModRef:
		return si.in.modules[t.name]
	case *snapOriginRef:
		if m, ok := si.in.modules[t.mod]; ok {
			if v, ok := m.Dict.Get(t.attr); ok {
				return v
			}
		}
		return None // unreachable: wants were validated before replay
	case *snapList:
		if v, ok := si.memo[t]; ok {
			return v.(Value)
		}
		lst := &ListV{Elems: make([]Value, len(t.elems))}
		si.memo[t] = lst
		for i, e := range t.elems {
			lst.Elems[i] = si.value(e)
		}
		return lst
	case *snapTuple:
		if v, ok := si.memo[t]; ok {
			return v.(Value)
		}
		tp := &TupleV{Elems: make([]Value, len(t.elems))}
		si.memo[t] = tp
		for i, e := range t.elems {
			tp.Elems[i] = si.value(e)
		}
		return tp
	case *snapDict:
		if v, ok := si.memo[t]; ok {
			return v.(Value)
		}
		d := NewDict()
		si.memo[t] = d
		for _, kv := range t.pairs {
			d.Set(si.value(kv.key), si.value(kv.val))
		}
		return d
	case *snapFunc:
		if v, ok := si.memo[t]; ok {
			return v.(Value)
		}
		f := &FuncV{
			Name:   t.name,
			Params: t.params,
			Body:   t.body,
			Expr:   t.expr,
			Module: t.module,
			Cost:   t.cost,
			code:   t.code,
			node:   t.node,
		}
		si.memo[t] = f
		f.Globals = si.ns(t.globals)
		f.Env = si.env(t.env)
		if t.defaults != nil {
			f.Defaults = make([]Value, len(t.defaults))
			for i, d := range t.defaults {
				if d != nil {
					f.Defaults[i] = si.value(d)
				}
			}
		}
		return f
	case *snapClass:
		if v, ok := si.memo[t]; ok {
			return v.(Value)
		}
		cls := &ClassV{Name: t.name, Module: t.module, Exception: t.exception}
		si.memo[t] = cls
		if t.base != nil {
			cls.Base, _ = si.value(t.base).(*ClassV)
		}
		cls.Dict = si.ns(t.dict)
		return cls
	case *snapInstance:
		if v, ok := si.memo[t]; ok {
			return v.(Value)
		}
		inst := &InstanceV{}
		si.memo[t] = inst
		inst.Class, _ = si.value(t.class).(*ClassV)
		inst.Dict = si.ns(t.dict)
		return inst
	case *snapBound:
		if v, ok := si.memo[t]; ok {
			return v.(Value)
		}
		bm := &BoundMethodV{}
		si.memo[t] = bm
		bm.Recv = si.value(t.recv)
		bm.Fn, _ = si.value(t.fn).(*FuncV)
		return bm
	}
	return None
}

func (si *snapInstaller) ns(n any) *Namespace {
	switch t := n.(type) {
	case nil:
		return nil
	case *snapModDictRef:
		if m, ok := si.in.modules[t.name]; ok {
			return m.Dict
		}
		return NewNamespace()
	case *snapNS:
		var ns *Namespace
		if v, ok := si.memo[t]; ok {
			ns = v.(*Namespace)
		} else {
			ns = newNamespaceSize(len(t.names))
			si.memo[t] = ns
		}
		if !si.filled[t] {
			// Mark before filling: a cycle re-entering mid-fill must get the
			// same (partially populated) namespace, as live execution would.
			si.filled[t] = true
			if len(ns.order) == 0 {
				// Fresh or still-empty shell: captured names are unique and
				// already in insertion order, so fill directly instead of
				// paying Set's membership check per attribute.
				ns.order = append(ns.order, t.names...)
				for i, name := range t.names {
					ns.m[name] = si.value(t.vals[i])
				}
			} else {
				for i, name := range t.names {
					ns.Set(name, si.value(t.vals[i]))
				}
			}
		}
		return ns
	}
	return NewNamespace()
}

func (si *snapInstaller) env(n any) *Env {
	switch t := n.(type) {
	case nil:
		return nil
	case *snapEnv:
		if v, ok := si.memo[t]; ok {
			return v.(*Env)
		}
		e := &Env{vars: make(map[string]Value, len(t.names))}
		si.memo[t] = e
		for i, name := range t.names {
			e.vars[name] = si.value(t.vals[i])
		}
		e.parent = si.env(t.parent)
		if t.globalNames != nil {
			e.globalNames = make(map[string]bool, len(t.globalNames))
			for _, name := range t.globalNames {
				e.globalNames[name] = true
			}
		}
		return e
	}
	return nil
}
