package pyruntime

import (
	"testing"

	"repro/internal/pyparser"
	"repro/internal/vfs"
)

// Substrate micro-benchmarks: the interpreter's statement throughput bounds
// how fast Delta Debugging's oracle runs execute.

func BenchmarkStatementThroughput(b *testing.B) {
	parsed := pyparser.MustParse("bench", `
total = 0
for i in range(200):
    if i % 2 == 0:
        total += i
    else:
        total -= 1
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := New(vfs.New())
		mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
		if perr := in.RunModule(mod, parsed.Body); perr != nil {
			b.Fatal(perr)
		}
	}
}

func BenchmarkFunctionCalls(b *testing.B) {
	parsed := pyparser.MustParse("bench", `
def add(a, c=1):
    return a + c

total = 0
for i in range(100):
    total = add(total, c=2)
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := New(vfs.New())
		mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
		if perr := in.RunModule(mod, parsed.Body); perr != nil {
			b.Fatal(perr)
		}
	}
}

func BenchmarkImportLargeModule(b *testing.B) {
	// A module with 500 attribute definitions, the shape DD re-imports on
	// every oracle run.
	src := ""
	for i := 0; i < 500; i++ {
		src += "def f" + itobench(i) + "(x):\n    return x\n"
	}
	fs := vfs.New()
	fs.Write("site-packages/big.py", src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := New(fs)
		if _, perr := in.Import("big"); perr != nil {
			b.Fatal(perr)
		}
	}
}

func BenchmarkImportWithSharedASTCache(b *testing.B) {
	src := ""
	for i := 0; i < 500; i++ {
		src += "def f" + itobench(i) + "(x):\n    return x\n"
	}
	fs := vfs.New()
	fs.Write("site-packages/big.py", src)
	cache := NewASTCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := New(fs)
		in.SetASTCache(cache)
		if _, perr := in.Import("big"); perr != nil {
			b.Fatal(perr)
		}
	}
}

// BenchmarkEngineEval compares the two engines on the same workloads, both
// cold (fresh AST cache per run: compile cost included, the DD-candidate
// shape) and warm (shared cache: pure evaluation, the stable-module shape).
func BenchmarkEngineEval(b *testing.B) {
	workloads := []struct{ name, src string }{
		{"stmts", `
total = 0
for i in range(200):
    if i % 2 == 0:
        total += i
    else:
        total -= 1
`},
		{"calls", `
def add(a, c=1):
    return a + c

total = 0
for i in range(100):
    total = add(total, c=2)
`},
	}
	for _, w := range workloads {
		parsed := pyparser.MustParse("bench", w.src)
		for _, eng := range []Engine{EngineWalker, EngineCompiled} {
			for _, warm := range []bool{false, true} {
				name := w.name + "/" + map[Engine]string{EngineWalker: "walker", EngineCompiled: "compiled"}[eng]
				if warm {
					name += "-warm"
				}
				b.Run(name, func(b *testing.B) {
					shared := NewASTCache()
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						in := New(vfs.New())
						in.SetEngine(eng)
						if warm {
							in.SetASTCache(shared)
						}
						mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
						if perr := in.RunModule(mod, parsed.Body); perr != nil {
							b.Fatal(perr)
						}
					}
				})
			}
		}
	}
}

func itobench(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
