package pyruntime

import (
	"strings"

	"repro/internal/pylang"
)

// pos0 is a zero position for builtins that have no source location.
var pos0 = pylang.Pos{}

// ltKind aliases the less-than comparison kind for sorted().
const ltKind = pylang.Lt

func method(name string, fn func(*Interp, []Value, map[string]Value) (Value, *PyErr)) Value {
	return &BuiltinV{Name: name, Fn: fn}
}

// strMethod returns the bound builtin method name on string s.
func strMethod(in *Interp, s StrV, name string) (Value, bool) {
	str := string(s)
	switch name {
	case "upper":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			return StrV(strings.ToUpper(str)), nil
		}), true
	case "lower":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			return StrV(strings.ToLower(str)), nil
		}), true
	case "strip":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			cutset := " \t\n\r"
			if len(a) > 0 {
				if cs, ok := a[0].(StrV); ok {
					cutset = string(cs)
				}
			}
			return StrV(strings.Trim(str, cutset)), nil
		}), true
	case "lstrip":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			return StrV(strings.TrimLeft(str, " \t\n\r")), nil
		}), true
	case "rstrip":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			return StrV(strings.TrimRight(str, " \t\n\r")), nil
		}), true
	case "split":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			var parts []string
			if len(a) == 0 {
				parts = strings.Fields(str)
			} else {
				sep, ok := a[0].(StrV)
				if !ok {
					return nil, in.NewExc("TypeError", "sep must be a string")
				}
				parts = strings.Split(str, string(sep))
			}
			out := make([]Value, len(parts))
			for i, p := range parts {
				out[i] = StrV(p)
			}
			return &ListV{Elems: out}, nil
		}), true
	case "join":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "join() takes exactly one argument")
			}
			items, err := in.iterate(a[0], pos0)
			if err != nil {
				return nil, err
			}
			parts := make([]string, len(items))
			for i, item := range items {
				sv, ok := item.(StrV)
				if !ok {
					return nil, in.NewExc("TypeError", "sequence item %d: expected str, %s found", i, item.TypeName())
				}
				parts[i] = string(sv)
			}
			return StrV(strings.Join(parts, str)), nil
		}), true
	case "replace":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 2 {
				return nil, in.NewExc("TypeError", "replace() takes 2 arguments")
			}
			old, ok1 := a[0].(StrV)
			new_, ok2 := a[1].(StrV)
			if !ok1 || !ok2 {
				return nil, in.NewExc("TypeError", "replace() arguments must be strings")
			}
			return StrV(strings.ReplaceAll(str, string(old), string(new_))), nil
		}), true
	case "startswith":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "startswith() takes one argument")
			}
			prefix, ok := a[0].(StrV)
			if !ok {
				return nil, in.NewExc("TypeError", "startswith argument must be str")
			}
			return BoolV(strings.HasPrefix(str, string(prefix))), nil
		}), true
	case "endswith":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "endswith() takes one argument")
			}
			suffix, ok := a[0].(StrV)
			if !ok {
				return nil, in.NewExc("TypeError", "endswith argument must be str")
			}
			return BoolV(strings.HasSuffix(str, string(suffix))), nil
		}), true
	case "find":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "find() takes one argument")
			}
			sub, ok := a[0].(StrV)
			if !ok {
				return nil, in.NewExc("TypeError", "find argument must be str")
			}
			return IntV(strings.Index(str, string(sub))), nil
		}), true
	case "count":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "count() takes one argument")
			}
			sub, ok := a[0].(StrV)
			if !ok {
				return nil, in.NewExc("TypeError", "count argument must be str")
			}
			return IntV(strings.Count(str, string(sub))), nil
		}), true
	case "capitalize":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if str == "" {
				return StrV(""), nil
			}
			return StrV(strings.ToUpper(str[:1]) + strings.ToLower(str[1:])), nil
		}), true
	case "title":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			words := strings.Fields(str)
			for i, w := range words {
				if w != "" {
					words[i] = strings.ToUpper(w[:1]) + strings.ToLower(w[1:])
				}
			}
			return StrV(strings.Join(words, " ")), nil
		}), true
	case "isdigit":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if str == "" {
				return BoolV(false), nil
			}
			for _, c := range str {
				if c < '0' || c > '9' {
					return BoolV(false), nil
				}
			}
			return BoolV(true), nil
		}), true
	case "format":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			// Positional {} substitution only.
			var sb strings.Builder
			ai := 0
			for i := 0; i < len(str); i++ {
				if str[i] == '{' && i+1 < len(str) && str[i+1] == '}' {
					if ai >= len(a) {
						return nil, in.NewExc("IndexError", "Replacement index %d out of range", ai)
					}
					sb.WriteString(Str(a[ai]))
					ai++
					i++
					continue
				}
				sb.WriteByte(str[i])
			}
			return StrV(sb.String()), nil
		}), true
	}
	return nil, false
}

// listMethod returns the bound builtin method name on list l.
func listMethod(in *Interp, l *ListV, name string) (Value, bool) {
	switch name {
	case "append":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "append() takes exactly one argument")
			}
			l.Elems = append(l.Elems, a[0])
			in.Alloc.Alloc(8)
			return None, nil
		}), true
	case "extend":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "extend() takes exactly one argument")
			}
			items, err := in.iterate(a[0], pos0)
			if err != nil {
				return nil, err
			}
			l.Elems = append(l.Elems, items...)
			in.Alloc.Alloc(int64(8 * len(items)))
			return None, nil
		}), true
	case "pop":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(l.Elems) == 0 {
				return nil, in.NewExc("IndexError", "pop from empty list")
			}
			idx := len(l.Elems) - 1
			if len(a) > 0 {
				iv, ok := asInt(a[0])
				if !ok {
					return nil, in.NewExc("TypeError", "pop index must be int")
				}
				idx = int(iv)
				if idx < 0 {
					idx += len(l.Elems)
				}
				if idx < 0 || idx >= len(l.Elems) {
					return nil, in.NewExc("IndexError", "pop index out of range")
				}
			}
			v := l.Elems[idx]
			l.Elems = append(l.Elems[:idx], l.Elems[idx+1:]...)
			return v, nil
		}), true
	case "insert":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 2 {
				return nil, in.NewExc("TypeError", "insert() takes 2 arguments")
			}
			iv, ok := asInt(a[0])
			if !ok {
				return nil, in.NewExc("TypeError", "insert index must be int")
			}
			idx := clampIndex(int(iv), len(l.Elems))
			l.Elems = append(l.Elems, nil)
			copy(l.Elems[idx+1:], l.Elems[idx:])
			l.Elems[idx] = a[1]
			return None, nil
		}), true
	case "remove":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "remove() takes exactly one argument")
			}
			for i, e := range l.Elems {
				if Equal(e, a[0]) {
					l.Elems = append(l.Elems[:i], l.Elems[i+1:]...)
					return None, nil
				}
			}
			return nil, in.NewExc("ValueError", "list.remove(x): x not in list")
		}), true
	case "index":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "index() takes exactly one argument here")
			}
			for i, e := range l.Elems {
				if Equal(e, a[0]) {
					return IntV(i), nil
				}
			}
			return nil, in.NewExc("ValueError", "%s is not in list", Repr(a[0]))
		}), true
	case "count":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) != 1 {
				return nil, in.NewExc("TypeError", "count() takes exactly one argument")
			}
			n := 0
			for _, e := range l.Elems {
				if Equal(e, a[0]) {
					n++
				}
			}
			return IntV(n), nil
		}), true
	case "sort":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			sortedV, err := biSorted(in, []Value{l}, k)
			if err != nil {
				return nil, err
			}
			l.Elems = sortedV.(*ListV).Elems
			return None, nil
		}), true
	case "reverse":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			for i, j := 0, len(l.Elems)-1; i < j; i, j = i+1, j-1 {
				l.Elems[i], l.Elems[j] = l.Elems[j], l.Elems[i]
			}
			return None, nil
		}), true
	case "clear":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			l.Elems = nil
			return None, nil
		}), true
	case "copy":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			out := make([]Value, len(l.Elems))
			copy(out, l.Elems)
			return &ListV{Elems: out}, nil
		}), true
	}
	return nil, false
}

// dictMethod returns the bound builtin method name on dict d.
func dictMethod(in *Interp, d *DictV, name string) (Value, bool) {
	switch name {
	case "get":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) < 1 || len(a) > 2 {
				return nil, in.NewExc("TypeError", "get expected 1 or 2 arguments")
			}
			if v, ok := d.Get(a[0]); ok {
				return v, nil
			}
			if len(a) == 2 {
				return a[1], nil
			}
			return None, nil
		}), true
	case "keys":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			items := d.Items()
			out := make([]Value, len(items))
			for i, kv := range items {
				out[i] = kv[0]
			}
			return &ListV{Elems: out}, nil
		}), true
	case "values":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			items := d.Items()
			out := make([]Value, len(items))
			for i, kv := range items {
				out[i] = kv[1]
			}
			return &ListV{Elems: out}, nil
		}), true
	case "items":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			items := d.Items()
			out := make([]Value, len(items))
			for i, kv := range items {
				out[i] = &TupleV{Elems: []Value{kv[0], kv[1]}}
			}
			return &ListV{Elems: out}, nil
		}), true
	case "update":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) == 1 {
				src, ok := a[0].(*DictV)
				if !ok {
					return nil, in.NewExc("TypeError", "update() argument must be a dict")
				}
				for _, kv := range src.Items() {
					d.Set(kv[0], kv[1])
				}
			}
			for _, key := range sortedKwargKeys(k) {
				d.SetStr(key, k[key])
			}
			return None, nil
		}), true
	case "pop":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) < 1 || len(a) > 2 {
				return nil, in.NewExc("TypeError", "pop expected 1 or 2 arguments")
			}
			if v, ok := d.Get(a[0]); ok {
				d.Delete(a[0])
				return v, nil
			}
			if len(a) == 2 {
				return a[1], nil
			}
			return nil, in.NewExc("KeyError", "%s", Repr(a[0]))
		}), true
	case "setdefault":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			if len(a) < 1 || len(a) > 2 {
				return nil, in.NewExc("TypeError", "setdefault expected 1 or 2 arguments")
			}
			if v, ok := d.Get(a[0]); ok {
				return v, nil
			}
			var def Value = None
			if len(a) == 2 {
				def = a[1]
			}
			d.Set(a[0], def)
			return def, nil
		}), true
	case "clear":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			*d = *NewDict()
			return None, nil
		}), true
	case "copy":
		return method(name, func(in *Interp, a []Value, k map[string]Value) (Value, *PyErr) {
			out := NewDict()
			for _, kv := range d.Items() {
				out.Set(kv[0], kv[1])
			}
			return out, nil
		}), true
	}
	return nil, false
}
