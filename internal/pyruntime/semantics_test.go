package pyruntime

import "testing"

// Deeper language-semantics coverage: the behaviours the debloater's
// correctness quietly depends on.

func TestAugmentedAssignTargets(t *testing.T) {
	expectOutput(t, `
x = 1
x += 2
x *= 3
x -= 1
x //= 2
print(x)

class C:
    pass
c = C()
c.n = 10
c.n += 5
print(c.n)

d = {"k": 1}
d["k"] += 9
print(d["k"])

l = [1, 2]
l[0] += 100
print(l)

s = "ab"
s += "cd"
print(s)
`, "4\n15\n10\n[101, 2]\nabcd\n")
}

func TestForElseWithBreak(t *testing.T) {
	expectOutput(t, `
for i in [1, 2, 3]:
    if i == 2:
        print("found")
        break
else:
    print("not found")

for i in [1, 3, 5]:
    if i == 2:
        break
else:
    print("exhausted")
`, "found\nexhausted\n")
}

func TestTryElse(t *testing.T) {
	expectOutput(t, `
try:
    x = 1
except ValueError:
    print("handler")
else:
    print("else ran")

try:
    raise ValueError("v")
except ValueError:
    print("caught")
else:
    print("must not run")
`, "else ran\ncaught\n")
}

func TestFinallyOverridesControlFlow(t *testing.T) {
	expectOutput(t, `
def f():
    try:
        return "from try"
    finally:
        print("finally runs")

print(f())

def g():
    try:
        return "try"
    finally:
        return "finally wins"

print(g())
`, "finally runs\nfrom try\nfinally wins\n")
}

func TestNestedClosuresShareEnclosing(t *testing.T) {
	expectOutput(t, `
def counterish(start):
    box = [start]
    def bump():
        box[0] += 1
        return box[0]
    def read():
        return box[0]
    return (bump, read)

bump, read = counterish(10)
bump()
bump()
print(read())
`, "12\n")
}

func TestMethodResolutionOrder(t *testing.T) {
	expectOutput(t, `
class A:
    def who(self):
        return "A"
    def describe(self):
        return "I am " + self.who()

class B(A):
    def who(self):
        return "B"

print(A().describe())
print(B().describe())
`, "I am A\nI am B\n")
}

func TestExceptionSubclassCatching(t *testing.T) {
	expectOutput(t, `
class AppError(Exception):
    pass

class DBError(AppError):
    pass

try:
    raise DBError("down")
except AppError as e:
    print("caught app error:", e.args[0])

try:
    raise DBError("down")
except Exception:
    print("caught as Exception")
`, "caught app error: down\ncaught as Exception\n")
}

func TestRaiseClassWithoutArgs(t *testing.T) {
	perr := runExpectErr(t, "raise ValueError")
	if perr.ClassName() != "ValueError" {
		t.Errorf("class = %s", perr.ClassName())
	}
}

func TestRaiseNonExceptionFails(t *testing.T) {
	perr := runExpectErr(t, "raise 42")
	if perr.ClassName() != "TypeError" {
		t.Errorf("class = %s", perr.ClassName())
	}
}

func TestSliceEdgeCases(t *testing.T) {
	expectOutput(t, `
l = [0, 1, 2, 3, 4]
print(l[1:3], l[:2], l[3:], l[:])
print(l[-2:], l[:-3])
print(l[4:2])
print("hello"[1:4])
t = (1, 2, 3)
print(t[0:2])
`, "[1, 2] [0, 1] [3, 4] [0, 1, 2, 3, 4]\n[3, 4] [0, 1]\n[]\nell\n(1, 2)\n")
}

func TestNegativeIndexing(t *testing.T) {
	expectOutput(t, `
l = [10, 20, 30]
print(l[-1], l[-3])
print("abc"[-1])
`, "30 10\nc\n")
	perr := runExpectErr(t, "[1, 2][-3]")
	if perr.ClassName() != "IndexError" {
		t.Errorf("class = %s", perr.ClassName())
	}
}

func TestStringIterationAndMembership(t *testing.T) {
	expectOutput(t, `
for ch in "abc":
    print(ch, end="")
print()
print("bc" in "abcd", "x" in "abcd", "x" not in "abcd")
`, "abc\nTrue False True\n")
}

func TestDictIterationOrder(t *testing.T) {
	expectOutput(t, `
d = {"z": 1, "a": 2, "m": 3}
for k in d:
    print(k, d[k])
`, "z 1\na 2\nm 3\n")
}

func TestIsAndIsNot(t *testing.T) {
	expectOutput(t, `
x = None
print(x is None, x is not None)
a = [1]
b = [1]
print(a is b, a == b, a is a)
`, "True False\nFalse True True\n")
}

func TestDecoratorsApplyInOrder(t *testing.T) {
	expectOutput(t, `
def exclaim(fn):
    def wrapped(x):
        return fn(x) + "!"
    return wrapped

def shout(fn):
    def wrapped(x):
        return fn(x).upper()
    return wrapped

@exclaim
@shout
def greet(name):
    return "hi " + name

print(greet("bob"))
`, "HI BOB!\n")
}

func TestLambdaClosures(t *testing.T) {
	expectOutput(t, `
fns = []
for i in [1, 2, 3]:
    fns.append(lambda x, i=i: x * i)
print(fns[0](10), fns[1](10), fns[2](10))
`, "10 20 30\n")
}

func TestDefaultArgumentsEvaluated(t *testing.T) {
	expectOutput(t, `
base = 10
def f(x, y=base + 5):
    return x + y
print(f(1))
print(f(1, 2))
`, "16\n3\n")
}

func TestMultipleReturnValuesViaTuple(t *testing.T) {
	expectOutput(t, `
def divmod_(a, b):
    return a // b, a % b

q, r = divmod_(17, 5)
print(q, r)
`, "3 2\n")
}

func TestStarImportWithoutAll(t *testing.T) {
	expectOutputFiles(t, `
from lib import *
print(visible())
try:
    _hidden()
except NameError:
    print("underscore names not exported")
`, "v\nunderscore names not exported\n", map[string]string{
		"site-packages/lib.py": `
def visible():
    return "v"
def _hidden():
    return "h"
`})
}

func TestRelativeImports(t *testing.T) {
	expectOutputFiles(t, `
import pkg
print(pkg.combined())
`, "base+sibling\n", map[string]string{
		"site-packages/pkg/__init__.py": `
from .base import base_val
from .sub import combined
`,
		"site-packages/pkg/base.py": `
def base_val():
    return "base"
`,
		"site-packages/pkg/sub.py": `
from .base import base_val

def combined():
    return base_val() + "+sibling"
`})
}

func TestCyclicImportPartialModule(t *testing.T) {
	// a imports b which imports a back; b sees a's partially-initialized
	// namespace, as in CPython.
	expectOutputFiles(t, `
import a
print(a.finish())
`, "a-early+b\n", map[string]string{
		"site-packages/a.py": `
early = "a-early"
import b

def finish():
    return b.combined
`,
		"site-packages/b.py": `
import a
combined = a.early + "+b"
`})
}

func TestModuleAttributeAssignment(t *testing.T) {
	expectOutputFiles(t, `
import cfg
cfg.value = 99
print(cfg.value)
cfg.fresh = "new"
print(cfg.fresh)
del cfg.fresh
print(hasattr(cfg, "fresh"))
`, "99\nnew\nFalse\n", map[string]string{
		"site-packages/cfg.py": "value = 1\n",
	})
}

func TestDeepRecursionWithinLimit(t *testing.T) {
	expectOutput(t, `
def down(n):
    if n == 0:
        return 0
    return 1 + down(n - 1)
print(down(150))
`, "150\n")
}

func TestIntegerFloatCoercion(t *testing.T) {
	expectOutput(t, `
print(1 + 2.5, 2.5 + 1)
print(7 / 2, 7.0 // 2.0, 7.5 % 2)
print(2 ** -1)
print(10 % 3.0)
print(True + True, True * 5)
`, "3.5 3.5\n3.5 3.0 1.5\n0.5\n1.0\n2 5\n")
}

func TestComparisonChainsAndMixed(t *testing.T) {
	expectOutput(t, `
print(1 < 2 < 3, 1 < 2 > 3, 3 >= 3 >= 2)
print([1, 2] < [1, 3], [1] < [1, 0], (2,) > (1, 9))
print("abc" < "abd", "a" <= "a")
`, "True False True\nTrue True True\nTrue True\n")
}

func TestUnsupportedOperandErrors(t *testing.T) {
	cases := map[string]string{
		`"a" + 1`:        "TypeError",
		`{} + {}`:        "TypeError",
		`1 < "a"`:        "TypeError",
		`len(1)`:         "TypeError",
		`None()`:         "TypeError",
		`1 / 0`:          "ZeroDivisionError",
		`1 // 0`:         "ZeroDivisionError",
		`1 % 0`:          "ZeroDivisionError",
		`1.0 / 0.0`:      "ZeroDivisionError",
		`[1][5]`:         "IndexError",
		`{}["k"]`:        "KeyError",
		`undefined_name`: "NameError",
	}
	for src, wantClass := range cases {
		perr := runExpectErr(t, src)
		if perr.ClassName() != wantClass {
			t.Errorf("%s raised %s, want %s", src, perr.ClassName(), wantClass)
		}
	}
}

func TestPercentFormattingEdges(t *testing.T) {
	expectOutput(t, `
print("100%%" % ())
print("%s and %r" % ("plain", "quoted"))
print("%.0f|%.3f" % (2.5, 1.0))
print("%d" % 3.9)
`, "100%\nplain and 'quoted'\n2|1.000\n3\n")
}

func TestPrintKwargs(t *testing.T) {
	expectOutput(t, `
print("a", "b", sep="-")
print("x", end="")
print("y")
print()
`, "a-b\nxy\n\n")
}

func TestImportStarBadAll(t *testing.T) {
	perr := runExpectErrFiles(t, "from lib import *", map[string]string{
		"site-packages/lib.py": "__all__ = [\"missing\"]\ndef present():\n    return 1\n",
	})
	if perr.ClassName() != "AttributeError" {
		t.Errorf("bad __all__ raised %s", perr.ClassName())
	}
	perr = runExpectErrFiles(t, "from lib import *", map[string]string{
		"site-packages/lib.py": "__all__ = [42]\n",
	})
	if perr.ClassName() != "TypeError" {
		t.Errorf("non-string __all__ raised %s", perr.ClassName())
	}
}

func TestFromImportMissingName(t *testing.T) {
	perr := runExpectErrFiles(t, "from lib import nothing", map[string]string{
		"site-packages/lib.py": "x = 1\n",
	})
	if perr.ClassName() != "ImportError" {
		t.Errorf("missing name raised %s", perr.ClassName())
	}
}

func TestRelativeImportBeyondTopLevel(t *testing.T) {
	perr := runExpectErrFiles(t, "import lib", map[string]string{
		"site-packages/lib.py": "from ...nowhere import thing\n",
	})
	if perr.ClassName() != "ImportError" {
		t.Errorf("beyond-top relative import raised %s", perr.ClassName())
	}
}

func TestSortedWithFailingKey(t *testing.T) {
	perr := runExpectErr(t, `
def bad(x):
    raise ValueError("key exploded")
sorted([3, 1], key=bad)
`)
	if perr.ClassName() != "ValueError" {
		t.Errorf("failing key raised %s", perr.ClassName())
	}
	// Unorderable elements surface a TypeError.
	perr = runExpectErr(t, `sorted([1, "a"])`)
	if perr.ClassName() != "TypeError" {
		t.Errorf("mixed sort raised %s", perr.ClassName())
	}
}

func TestRangeNegativeStepMembership(t *testing.T) {
	expectOutput(t, `
r = range(10, 0, -2)
print(10 in r, 9 in r, 2 in r, 0 in r)
print(len(r))
`, "True False True False\n5\n")
}

func TestRangeZeroStepError(t *testing.T) {
	perr := runExpectErr(t, "range(1, 5, 0)")
	if perr.ClassName() != "ValueError" {
		t.Errorf("zero step raised %s", perr.ClassName())
	}
}

func TestTupleSlicesAndConcat(t *testing.T) {
	expectOutput(t, `
t = (1, 2) + (3,)
print(t, t[1:], len(t))
print((1, 2) * 1 if False else "no tuple repeat needed")
l = [0] * 3
print(l, [1, 2] + [3])
print("ab" * 0, 0 * "ab")
`, "(1, 2, 3) (2, 3) 3\nno tuple repeat needed\n[0, 0, 0] [1, 2, 3]\n \n")
}

func TestMinMaxErrors(t *testing.T) {
	if perr := runExpectErr(t, "min([])"); perr.ClassName() != "ValueError" {
		t.Errorf("empty min raised %s", perr.ClassName())
	}
	if perr := runExpectErr(t, `max([1, "a"])`); perr.ClassName() != "TypeError" {
		t.Errorf("mixed max raised %s", perr.ClassName())
	}
}

func TestSumTypeError(t *testing.T) {
	if perr := runExpectErr(t, `sum(["a"])`); perr.ClassName() != "TypeError" {
		t.Errorf("sum of strings raised %s", perr.ClassName())
	}
}

func TestFormatPercentErrors(t *testing.T) {
	cases := map[string]string{
		`"%d %d" % (1,)`: "TypeError",  // not enough args
		`"%d" % "x"`:     "TypeError",  // wrong type
		`"%q" % 1`:       "ValueError", // unknown verb
		`"%" % 1`:        "ValueError", // dangling percent
	}
	for src, want := range cases {
		perr := runExpectErr(t, src)
		if perr.ClassName() != want {
			t.Errorf("%s raised %s, want %s", src, perr.ClassName(), want)
		}
	}
}

func TestClassDecorator(t *testing.T) {
	expectOutput(t, `
def register(cls):
    cls.registered = True
    return cls

@register
class Service:
    pass

print(Service.registered)
`, "True\n")
}

func TestInstanceCallableViaDunder(t *testing.T) {
	expectOutput(t, `
class Adder:
    def __init__(self, n):
        self.n = n
    def __call__(self, x):
        return x + self.n

add3 = Adder(3)
print(add3(4))
`, "7\n")
	perr := runExpectErr(t, `
class NotCallable:
    pass
NotCallable()()
`)
	if perr.ClassName() != "TypeError" {
		t.Errorf("non-callable instance raised %s", perr.ClassName())
	}
}

func TestWhileElseSkippedOnBreak(t *testing.T) {
	expectOutput(t, `
n = 0
while n < 5:
    n += 1
    if n == 3:
        break
else:
    print("never")
print(n)
`, "3\n")
}

func TestNestedTupleUnpack(t *testing.T) {
	expectOutput(t, `
pairs = [(1, "a"), (2, "b")]
for n, s in pairs:
    print(n, s)
`, "1 a\n2 b\n")
}
