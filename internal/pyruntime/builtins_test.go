package pyruntime

import (
	"strings"
	"testing"
)

// Builtin-function coverage through real programs.

func TestBuiltinConversions(t *testing.T) {
	expectOutput(t, `
print(int("42"), int(3.9), int(True), int())
print(float("2.5"), float(3), float())
print(str(12), str(None), str([1, 2]))
print(bool(0), bool(""), bool("x"), bool([]))
print(list("abc"))
print(tuple([1, 2]))
print(dict(a=1, b=2))
`, "42 3 1 0\n2.5 3.0 0.0\n12 None [1, 2]\nFalse False True False\n['a', 'b', 'c']\n(1, 2)\n{'a': 1, 'b': 2}\n")
}

func TestBuiltinConversionErrors(t *testing.T) {
	perr := runExpectErr(t, `int("not a number")`)
	if perr.ClassName() != "ValueError" {
		t.Errorf("int error class = %s", perr.ClassName())
	}
	perr = runExpectErr(t, `float("nope")`)
	if perr.ClassName() != "ValueError" {
		t.Errorf("float error class = %s", perr.ClassName())
	}
}

func TestBuiltinAggregates(t *testing.T) {
	expectOutput(t, `
print(min(3, 1, 2), max(3, 1, 2))
print(min([5, 4]), max([5, 4]))
print(min("b", "a"), max(["x", "y"]))
print(sum([1, 2, 3]), sum([0.5, 0.5]), sum([1, 2], 10))
print(abs(-3), abs(2.5), abs(-0.0))
print(round(2.675, 2), round(3.5), round(2.5), round(7))
`, "1 3\n4 5\na y\n6 1.0 13\n3 2.5 0.0\n2.68 4 2 7\n")
}

func TestBuiltinSequenceTools(t *testing.T) {
	expectOutput(t, `
print(sorted([3, 1, 2]))
print(sorted(["b", "a"], reverse=True))
print(sorted([(2, "b"), (1, "a")]))
print(sorted([-3, 1, -2], key=abs))
print(reversed([1, 2, 3]))
print(list(zip([1, 2, 3], "ab")))
print(enumerate(["x", "y"], 1))
`, "[1, 2, 3]\n['b', 'a']\n[(1, 'a'), (2, 'b')]\n[1, -2, -3]\n[3, 2, 1]\n[(1, 'a'), (2, 'b')]\n[(1, 'x'), (2, 'y')]\n")
}

func TestBuiltinIntrospection(t *testing.T) {
	expectOutput(t, `
class Base:
    def m(self):
        return 1

class Child(Base):
    pass

c = Child()
print(isinstance(c, Base), isinstance(c, Child), isinstance(1, Base))
print(issubclass(Child, Base), issubclass(Base, Child))
print(isinstance("s", str), isinstance(1, int), isinstance(1.5, float))
print(isinstance(True, int))
print(callable(Base), callable(c.m), callable(3))
`, "True True False\nTrue False\nTrue True True\nTrue\nTrue True False\n")
}

func TestBuiltinDirOnModule(t *testing.T) {
	out, _ := runProgram(t, `
import m
print(dir(m))
`, map[string]string{"site-packages/m.py": "b = 1\na = 2\n"})
	if !strings.Contains(out, "'a', 'b'") {
		t.Errorf("dir output = %q", out)
	}
}

func TestBuiltinRangeSemantics(t *testing.T) {
	expectOutput(t, `
print(list(range(4)))
print(list(range(2, 5)))
print(list(range(10, 0, -3)))
print(len(range(1000000)))
print(5 in range(10), 10 in range(10), 4 in range(0, 10, 2))
`, "[0, 1, 2, 3]\n[2, 3, 4]\n[10, 7, 4, 1]\n1000000\nTrue False True\n")
}

func TestStringMethodSuite(t *testing.T) {
	expectOutput(t, `
s = "  Hello World  "
print(s.strip() + "|")
print(s.lstrip() + "|")
print((s.rstrip() + "|").replace(" ", "_"))
print("a,b,,c".split(","))
print("one two  three".split())
print("Hello".startswith("He"), "Hello".endswith("lo"))
print("hello".find("ll"), "hello".find("xx"))
print("banana".count("an"))
print("hello world".capitalize())
print("hello world".title())
print("123".isdigit(), "12a".isdigit(), "".isdigit())
print("x={} y={}".format(1, "two"))
`, "Hello World|\nHello World  |\n__Hello_World|\n['a', 'b', '', 'c']\n['one', 'two', 'three']\nTrue True\n2 -1\n2\nHello world\nHello World\nTrue False False\nx=1 y=two\n")
}

func TestListMethodSuite(t *testing.T) {
	expectOutput(t, `
l = [3, 1]
l.append(2)
l.extend([5, 4])
l.insert(0, 9)
print(l)
print(l.pop(), l.pop(0))
l.sort()
print(l)
l.reverse()
print(l)
print(l.index(3), l.count(3))
l.remove(3)
print(l)
c = l.copy()
c.clear()
print(l, c)
`, "[9, 3, 1, 2, 5, 4]\n4 9\n[1, 2, 3, 5]\n[5, 3, 2, 1]\n1 1\n[5, 2, 1]\n[5, 2, 1] []\n")
}

func TestDictMethodSuite(t *testing.T) {
	expectOutput(t, `
d = {"a": 1}
d.update({"b": 2}, c=3)
print(d)
print(d.setdefault("a", 99), d.setdefault("z", 0))
print(d.pop("z"), d.pop("missing", -1))
print(d.keys(), d.values())
print(d.items())
e = d.copy()
e.clear()
print(d, e)
`, "{'a': 1, 'b': 2, 'c': 3}\n1 0\n0 -1\n['a', 'b', 'c'] [1, 2, 3]\n[('a', 1), ('b', 2), ('c', 3)]\n{'a': 1, 'b': 2, 'c': 3} {}\n")
}

func TestListMethodErrors(t *testing.T) {
	if perr := runExpectErr(t, "[].pop()"); perr.ClassName() != "IndexError" {
		t.Errorf("pop error = %s", perr.ClassName())
	}
	if perr := runExpectErr(t, "[1].remove(2)"); perr.ClassName() != "ValueError" {
		t.Errorf("remove error = %s", perr.ClassName())
	}
	if perr := runExpectErr(t, "{}.pop(\"k\")"); perr.ClassName() != "KeyError" {
		t.Errorf("dict pop error = %s", perr.ClassName())
	}
}

func TestGetattrSetattrBuiltins(t *testing.T) {
	expectOutputFiles(t, `
class C:
    pass
c = C()
setattr(c, "field", 10)
print(getattr(c, "field"))
print(getattr(c, "nope", "default"))
import m
print(getattr(m, "value"))
`, "10\ndefault\n7\n", map[string]string{"site-packages/m.py": "value = 7\n"})
}

// expectOutput with optional files.
func expectOutputFiles(t *testing.T, src, want string, files map[string]string) {
	t.Helper()
	got, _ := runProgram(t, src, files)
	if got != want {
		t.Errorf("output mismatch:\n got: %q\nwant: %q", got, want)
	}
}
