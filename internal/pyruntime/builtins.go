package pyruntime

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/simtime"
)

// NativeBuf models memory held by native (C-extension) code: model weights,
// lookup tables, compiled kernels. Synthetic libraries create these during
// initialization; removing the creating statement via DD releases the
// simulated footprint — the mechanism behind the paper's memory savings.
type NativeBuf struct {
	MB float64
}

func (*NativeBuf) TypeName() string { return "native_buffer" }

// The builtins namespace is built once and shared by every interpreter:
// every value in it is immutable — a BuiltinV is a name plus a stateless
// function that receives the interpreter per call, and builtin classes
// reject setAttr (as CPython does) — and nothing ever writes to the
// namespace itself, so a per-interpreter copy would only burn allocations.
var (
	builtinsOnce   sync.Once
	builtinsShared *Namespace
)

func (in *Interp) buildBuiltins() *Namespace {
	builtinsOnce.Do(func() { builtinsShared = buildBuiltinFuncs() })
	return builtinsShared
}

func buildBuiltinFuncs() *Namespace {
	ns := NewNamespace()
	reg := func(name string, fn func(*Interp, []Value, map[string]Value) (Value, *PyErr)) {
		ns.Set(name, &BuiltinV{Name: name, Fn: fn})
	}

	reg("print", biPrint)
	reg("len", biLen)
	reg("range", biRange)
	reg("str", biStr)
	reg("repr", biRepr)
	reg("int", biInt)
	reg("float", biFloat)
	reg("bool", biBool)
	reg("list", biList)
	reg("tuple", biTuple)
	reg("dict", biDict)
	reg("abs", biAbs)
	reg("min", biMin)
	reg("max", biMax)
	reg("sum", biSum)
	reg("sorted", biSorted)
	reg("reversed", biReversed)
	reg("enumerate", biEnumerate)
	reg("zip", biZip)
	reg("isinstance", biIsinstance)
	reg("issubclass", biIssubclass)
	reg("hasattr", biHasattr)
	reg("getattr", biGetattr)
	reg("setattr", biSetattr)
	reg("type", biType)
	reg("round", biRound)
	reg("dir", biDir)
	reg("callable", biCallable)
	reg("id", biID)

	// Substrate-specific builtins (documented in DESIGN.md):
	// load_native models loading a native extension — it advances the
	// virtual clock and allocates simulated memory. It is how synthetic
	// libraries carry the import-time and footprint of their real
	// counterparts.
	reg("load_native", biLoadNative)
	// native_alloc returns a buffer holding simulated megabytes; assigning
	// it to a module attribute ties the footprint to that attribute.
	reg("native_alloc", biNativeAlloc)
	// compute models CPU work in the handler (milliseconds).
	reg("compute", biCompute)
	// remote_call journals an external side effect (S3, DB, child lambda).
	reg("remote_call", biRemoteCall)

	return ns
}

func biPrint(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	sep, end := " ", "\n"
	if v, ok := kwargs["sep"]; ok {
		sep = Str(v)
	}
	if v, ok := kwargs["end"]; ok {
		end = Str(v)
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = Str(a)
	}
	fmt.Fprint(in.Stdout, strings.Join(parts, sep)+end)
	return None, nil
}

func biLen(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "len() takes exactly one argument (%d given)", len(args))
	}
	switch t := args[0].(type) {
	case StrV:
		return IntV(len(t)), nil
	case *ListV:
		return IntV(len(t.Elems)), nil
	case *TupleV:
		return IntV(len(t.Elems)), nil
	case *DictV:
		return IntV(t.Len()), nil
	case *RangeV:
		return IntV(t.Len()), nil
	}
	return nil, in.NewExc("TypeError", "object of type '%s' has no len()", args[0].TypeName())
}

func biRange(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	get := func(v Value) (int64, *PyErr) {
		iv, ok := asInt(v)
		if !ok {
			return 0, in.NewExc("TypeError", "range() argument must be int, not %s", v.TypeName())
		}
		return iv, nil
	}
	switch len(args) {
	case 1:
		stop, err := get(args[0])
		if err != nil {
			return nil, err
		}
		return &RangeV{Start: 0, Stop: stop, Step: 1}, nil
	case 2:
		start, err := get(args[0])
		if err != nil {
			return nil, err
		}
		stop, err := get(args[1])
		if err != nil {
			return nil, err
		}
		return &RangeV{Start: start, Stop: stop, Step: 1}, nil
	case 3:
		start, err := get(args[0])
		if err != nil {
			return nil, err
		}
		stop, err := get(args[1])
		if err != nil {
			return nil, err
		}
		step, err := get(args[2])
		if err != nil {
			return nil, err
		}
		if step == 0 {
			return nil, in.NewExc("ValueError", "range() arg 3 must not be zero")
		}
		return &RangeV{Start: start, Stop: stop, Step: step}, nil
	}
	return nil, in.NewExc("TypeError", "range expected 1 to 3 arguments, got %d", len(args))
}

func biStr(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) == 0 {
		return StrV(""), nil
	}
	return StrV(Str(args[0])), nil
}

func biRepr(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "repr() takes exactly one argument")
	}
	return StrV(Repr(args[0])), nil
}

func biInt(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) == 0 {
		return IntV(0), nil
	}
	switch t := args[0].(type) {
	case IntV:
		return t, nil
	case BoolV:
		return IntV(boolToInt(bool(t))), nil
	case FloatV:
		return IntV(int64(t)), nil
	case StrV:
		iv, err := strconv.ParseInt(strings.TrimSpace(string(t)), 10, 64)
		if err != nil {
			return nil, in.NewExc("ValueError", "invalid literal for int() with base 10: %s", Repr(t))
		}
		return IntV(iv), nil
	}
	return nil, in.NewExc("TypeError", "int() argument must be a string or a number, not '%s'", args[0].TypeName())
}

func biFloat(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) == 0 {
		return FloatV(0), nil
	}
	switch t := args[0].(type) {
	case FloatV:
		return t, nil
	case IntV:
		return FloatV(t), nil
	case BoolV:
		return FloatV(boolToInt(bool(t))), nil
	case StrV:
		fv, err := strconv.ParseFloat(strings.TrimSpace(string(t)), 64)
		if err != nil {
			return nil, in.NewExc("ValueError", "could not convert string to float: %s", Repr(t))
		}
		return FloatV(fv), nil
	}
	return nil, in.NewExc("TypeError", "float() argument must be a string or a number, not '%s'", args[0].TypeName())
}

func biBool(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) == 0 {
		return BoolV(false), nil
	}
	return BoolV(Truth(args[0])), nil
}

func biList(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) == 0 {
		return &ListV{}, nil
	}
	elems, err := in.iterate(args[0], pos0)
	if err != nil {
		return nil, err
	}
	return &ListV{Elems: elems}, nil
}

func biTuple(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) == 0 {
		return &TupleV{}, nil
	}
	elems, err := in.iterate(args[0], pos0)
	if err != nil {
		return nil, err
	}
	return &TupleV{Elems: elems}, nil
}

func biDict(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	d := NewDict()
	if len(args) == 1 {
		if src, ok := args[0].(*DictV); ok {
			for _, kv := range src.Items() {
				d.Set(kv[0], kv[1])
			}
		} else {
			return nil, in.NewExc("TypeError", "dict() argument must be a dict")
		}
	}
	for _, k := range sortedKwargKeys(kwargs) {
		d.SetStr(k, kwargs[k])
	}
	return d, nil
}

// sortedKwargKeys orders keyword arguments deterministically before they
// are inserted into an ordered dict (Go map iteration is randomized; the
// oracle compares printed dicts byte-for-byte).
func sortedKwargKeys(kwargs map[string]Value) []string {
	keys := make([]string, 0, len(kwargs))
	for k := range kwargs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func biAbs(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "abs() takes exactly one argument")
	}
	switch t := args[0].(type) {
	case IntV:
		if t < 0 {
			return -t, nil
		}
		return t, nil
	case FloatV:
		return FloatV(math.Abs(float64(t))), nil
	case BoolV:
		return IntV(boolToInt(bool(t))), nil
	}
	return nil, in.NewExc("TypeError", "bad operand type for abs(): '%s'", args[0].TypeName())
}

func extremum(in *Interp, args []Value, wantMax bool) (Value, *PyErr) {
	var items []Value
	if len(args) == 1 {
		var err *PyErr
		items, err = in.iterate(args[0], pos0)
		if err != nil {
			return nil, err
		}
	} else {
		items = args
	}
	if len(items) == 0 {
		return nil, in.NewExc("ValueError", "arg is an empty sequence")
	}
	best := items[0]
	for _, item := range items[1:] {
		af, aok := asFloat(item)
		bf, bok := asFloat(best)
		if aok && bok {
			if (wantMax && af > bf) || (!wantMax && af < bf) {
				best = item
			}
			continue
		}
		as, asok := item.(StrV)
		bs, bsok := best.(StrV)
		if asok && bsok {
			if (wantMax && as > bs) || (!wantMax && as < bs) {
				best = item
			}
			continue
		}
		return nil, in.NewExc("TypeError", "'<' not supported between instances of '%s' and '%s'",
			item.TypeName(), best.TypeName())
	}
	return best, nil
}

func biMin(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	return extremum(in, args, false)
}

func biMax(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	return extremum(in, args, true)
}

func biSum(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) < 1 {
		return nil, in.NewExc("TypeError", "sum() takes at least 1 argument")
	}
	items, err := in.iterate(args[0], pos0)
	if err != nil {
		return nil, err
	}
	intSum := int64(0)
	floatSum := 0.0
	isFloat := false
	if len(args) > 1 {
		switch s := args[1].(type) {
		case IntV:
			intSum = int64(s)
		case FloatV:
			floatSum = float64(s)
			isFloat = true
		}
	}
	for _, item := range items {
		switch t := item.(type) {
		case IntV:
			intSum += int64(t)
		case FloatV:
			floatSum += float64(t)
			isFloat = true
		case BoolV:
			intSum += boolToInt(bool(t))
		default:
			return nil, in.NewExc("TypeError", "unsupported operand type(s) for +: 'int' and '%s'", item.TypeName())
		}
	}
	if isFloat {
		return FloatV(floatSum + float64(intSum)), nil
	}
	return IntV(intSum), nil
}

func biSorted(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "sorted() takes one positional argument")
	}
	items, err := in.iterate(args[0], pos0)
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(items))
	copy(out, items)
	keyFn, hasKey := kwargs["key"]
	reverse := false
	if rv, ok := kwargs["reverse"]; ok {
		reverse = Truth(rv)
	}
	keys := out
	if hasKey {
		keys = make([]Value, len(out))
		for i, item := range out {
			kv, kerr := in.call(keyFn, []Value{item}, nil, pos0)
			if kerr != nil {
				return nil, kerr
			}
			keys[i] = kv
		}
	}
	var sortErr *PyErr
	indices := make([]int, len(out))
	for i := range indices {
		indices[i] = i
	}
	sort.SliceStable(indices, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		less, err := in.compareOne(ltKind, keys[indices[a]], keys[indices[b]], pos0)
		if err != nil {
			sortErr = err
			return false
		}
		return less
	})
	if sortErr != nil {
		return nil, sortErr
	}
	final := make([]Value, len(out))
	for i, idx := range indices {
		final[i] = out[idx]
	}
	if reverse {
		for i, j := 0, len(final)-1; i < j; i, j = i+1, j-1 {
			final[i], final[j] = final[j], final[i]
		}
	}
	return &ListV{Elems: final}, nil
}

func biReversed(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "reversed() takes exactly one argument")
	}
	items, err := in.iterate(args[0], pos0)
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(items))
	for i, item := range items {
		out[len(items)-1-i] = item
	}
	return &ListV{Elems: out}, nil
}

func biEnumerate(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) < 1 {
		return nil, in.NewExc("TypeError", "enumerate() missing required argument")
	}
	start := int64(0)
	if len(args) > 1 {
		if s, ok := asInt(args[1]); ok {
			start = s
		}
	}
	items, err := in.iterate(args[0], pos0)
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(items))
	for i, item := range items {
		out[i] = &TupleV{Elems: []Value{IntV(start + int64(i)), item}}
	}
	return &ListV{Elems: out}, nil
}

func biZip(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) == 0 {
		return &ListV{}, nil
	}
	seqs := make([][]Value, len(args))
	minLen := -1
	for i, a := range args {
		items, err := in.iterate(a, pos0)
		if err != nil {
			return nil, err
		}
		seqs[i] = items
		if minLen < 0 || len(items) < minLen {
			minLen = len(items)
		}
	}
	out := make([]Value, minLen)
	for i := 0; i < minLen; i++ {
		row := make([]Value, len(seqs))
		for j := range seqs {
			row[j] = seqs[j][i]
		}
		out[i] = &TupleV{Elems: row}
	}
	return &ListV{Elems: out}, nil
}

func valueIsInstance(v Value, c *ClassV) bool {
	switch t := v.(type) {
	case *InstanceV:
		return t.Class.IsSubclassOf(c)
	case NoneV:
		return false
	case BoolV:
		return c.Name == "bool" || c.Name == "int" || c.Name == "object"
	case IntV:
		return c.Name == "int" || c.Name == "object"
	case FloatV:
		return c.Name == "float" || c.Name == "object"
	case StrV:
		return c.Name == "str" || c.Name == "object"
	case *ListV:
		return c.Name == "list" || c.Name == "object"
	case *TupleV:
		return c.Name == "tuple" || c.Name == "object"
	case *DictV:
		return c.Name == "dict" || c.Name == "object"
	}
	return c.Name == "object"
}

func biIsinstance(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 2 {
		return nil, in.NewExc("TypeError", "isinstance expected 2 arguments, got %d", len(args))
	}
	classes := []Value{args[1]}
	if tup, ok := args[1].(*TupleV); ok {
		classes = tup.Elems
	}
	for _, cv := range classes {
		switch c := cv.(type) {
		case *ClassV:
			if valueIsInstance(args[0], c) {
				return BoolV(true), nil
			}
		case *BuiltinV:
			// Builtin constructors (str, int, ...) used as types.
			if args[0].TypeName() == c.Name {
				return BoolV(true), nil
			}
			if c.Name == "int" {
				if _, ok := args[0].(BoolV); ok {
					return BoolV(true), nil
				}
			}
		default:
			return nil, in.NewExc("TypeError", "isinstance() arg 2 must be a type or tuple of types")
		}
	}
	return BoolV(false), nil
}

func biIssubclass(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 2 {
		return nil, in.NewExc("TypeError", "issubclass expected 2 arguments")
	}
	sub, ok1 := args[0].(*ClassV)
	sup, ok2 := args[1].(*ClassV)
	if !ok1 || !ok2 {
		return nil, in.NewExc("TypeError", "issubclass() args must be classes")
	}
	return BoolV(sub.IsSubclassOf(sup)), nil
}

func biHasattr(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 2 {
		return nil, in.NewExc("TypeError", "hasattr expected 2 arguments")
	}
	name, ok := args[1].(StrV)
	if !ok {
		return nil, in.NewExc("TypeError", "attribute name must be string")
	}
	_, err := in.getAttr(args[0], string(name), pos0)
	return BoolV(err == nil), nil
}

func biGetattr(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) < 2 || len(args) > 3 {
		return nil, in.NewExc("TypeError", "getattr expected 2 or 3 arguments")
	}
	name, ok := args[1].(StrV)
	if !ok {
		return nil, in.NewExc("TypeError", "attribute name must be string")
	}
	v, err := in.getAttr(args[0], string(name), pos0)
	if err != nil {
		if len(args) == 3 && err.ClassName() == "AttributeError" {
			return args[2], nil
		}
		return nil, err
	}
	return v, nil
}

func biSetattr(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 3 {
		return nil, in.NewExc("TypeError", "setattr expected 3 arguments")
	}
	name, ok := args[1].(StrV)
	if !ok {
		return nil, in.NewExc("TypeError", "attribute name must be string")
	}
	if err := in.setAttr(args[0], string(name), args[2], pos0); err != nil {
		return nil, err
	}
	return None, nil
}

func biType(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "type() takes 1 argument here")
	}
	if inst, ok := args[0].(*InstanceV); ok {
		return inst.Class, nil
	}
	return StrV("<class '" + args[0].TypeName() + "'>"), nil
}

func biRound(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) < 1 {
		return nil, in.NewExc("TypeError", "round() missing required argument")
	}
	f, ok := asFloat(args[0])
	if !ok {
		return nil, in.NewExc("TypeError", "type %s doesn't define __round__", args[0].TypeName())
	}
	digits := int64(0)
	hasDigits := false
	if len(args) > 1 {
		if d, ok := asInt(args[1]); ok {
			digits = d
			hasDigits = true
		}
	}
	scale := math.Pow(10, float64(digits))
	r := math.RoundToEven(f*scale) / scale
	if !hasDigits {
		if _, isInt := args[0].(IntV); isInt {
			return args[0], nil
		}
		return IntV(int64(r)), nil
	}
	return FloatV(r), nil
}

func biDir(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "dir() takes one argument here")
	}
	var names []string
	switch t := args[0].(type) {
	case *ModuleV:
		names = t.Dict.SortedNames()
	case *ClassV:
		seen := map[string]bool{}
		for k := t; k != nil; k = k.Base {
			for _, n := range k.Dict.Names() {
				seen[n] = true
			}
		}
		for n := range seen {
			names = append(names, n)
		}
		sort.Strings(names)
	case *InstanceV:
		seen := map[string]bool{}
		for _, n := range t.Dict.Names() {
			seen[n] = true
		}
		for k := t.Class; k != nil; k = k.Base {
			for _, n := range k.Dict.Names() {
				seen[n] = true
			}
		}
		for n := range seen {
			names = append(names, n)
		}
		sort.Strings(names)
	default:
		return nil, in.NewExc("TypeError", "dir() unsupported for '%s'", args[0].TypeName())
	}
	out := make([]Value, len(names))
	for i, n := range names {
		out[i] = StrV(n)
	}
	return &ListV{Elems: out}, nil
}

func biCallable(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "callable() takes one argument")
	}
	switch args[0].(type) {
	case *FuncV, *BuiltinV, *ClassV, *BoundMethodV:
		return BoolV(true), nil
	}
	return BoolV(false), nil
}

func biID(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	// Deterministic stand-in: a monotonically increasing per-interpreter
	// token. Real id() values are address-dependent; corpus code only uses
	// id() for uniqueness, which this preserves within a run. Keeping the
	// counter on the interpreter also keeps parallel oracle runs
	// deterministic and race-free.
	in.idCounter++
	return IntV(in.idCounter), nil
}

// biLoadNative advances the virtual clock by args[0] milliseconds and
// allocates args[1] simulated megabytes, modeling a native extension load
// (shared-object mmap + static initializers).
func biLoadNative(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 2 {
		return nil, in.NewExc("TypeError", "load_native(ms, mb) takes 2 arguments")
	}
	ms, ok1 := asFloat(args[0])
	mb, ok2 := asFloat(args[1])
	if !ok1 || !ok2 {
		return nil, in.NewExc("TypeError", "load_native arguments must be numbers")
	}
	if ms < 0 || mb < 0 {
		return nil, in.NewExc("ValueError", "load_native arguments must be non-negative")
	}
	in.Clock.Advance(time.Duration(ms * float64(time.Millisecond)))
	in.Alloc.Alloc(int64(mb * float64(simtime.MB)))
	return None, nil
}

// biNativeAlloc allocates args[0] simulated megabytes and returns a buffer
// value holding them.
func biNativeAlloc(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "native_alloc(mb) takes 1 argument")
	}
	mb, ok := asFloat(args[0])
	if !ok || mb < 0 {
		return nil, in.NewExc("ValueError", "native_alloc argument must be a non-negative number")
	}
	in.Alloc.Alloc(int64(mb * float64(simtime.MB)))
	return &NativeBuf{MB: mb}, nil
}

// biCompute advances the virtual clock by args[0] milliseconds, modeling
// handler CPU work.
func biCompute(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 1 {
		return nil, in.NewExc("TypeError", "compute(ms) takes 1 argument")
	}
	ms, ok := asFloat(args[0])
	if !ok || ms < 0 {
		return nil, in.NewExc("ValueError", "compute argument must be a non-negative number")
	}
	in.Clock.Advance(time.Duration(ms * float64(time.Millisecond)))
	return None, nil
}

// biRemoteCall journals an external side effect and returns a canned
// response dict. The oracle compares journals between original and
// debloated runs.
func biRemoteCall(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) != 3 {
		return nil, in.NewExc("TypeError", "remote_call(service, op, payload) takes 3 arguments")
	}
	service, ok1 := args[0].(StrV)
	op, ok2 := args[1].(StrV)
	if !ok1 || !ok2 {
		return nil, in.NewExc("TypeError", "remote_call service and op must be strings")
	}
	in.RemoteLog = append(in.RemoteLog, RemoteCall{
		Service: string(service), Op: string(op), Payload: Repr(args[2]),
	})
	// Remote calls have network latency.
	in.Clock.Advance(12 * time.Millisecond)
	resp := NewDict()
	resp.SetStr("status", IntV(200))
	resp.SetStr("service", service)
	resp.SetStr("op", op)
	return resp, nil
}
