package pyruntime

import (
	"math/rand"
	"testing"

	"repro/internal/pyparser"
	"repro/internal/vfs"
)

// The interpreter's contract with the pipeline: any program the parser
// accepts either runs, raises a PyErr, or exhausts its fuel — never a Go
// panic and never a hang. DD throws thousands of mutilated module variants
// at the runtime, so this property carries the whole debloater.

var runtimeSeeds = []string{
	`
x = [1, 2, 3]
total = 0
for v in x:
    total += v * 2
print(total)
`,
	`
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
print(fib(12))
`,
	`
class Node:
    def __init__(self, v):
        self.v = v
        self.next = None

head = Node(1)
head.next = Node(2)
print(head.next.v)
`,
	`
d = {"a": [1, 2], "b": (3,)}
for k in d:
    try:
        print(k, d[k][5])
    except IndexError:
        print(k, "oob")
`,
	`
s = "hello world"
print(s.upper().replace("L", "_").split("_"))
print("%s=%d" % (s[:5], len(s)))
`,
}

func TestInterpreterNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	mutTokens := []string{"x", "0", "None", "][", ")", "(", "+", "del x\n",
		"raise ValueError(\"m\")\n", ".pop()", "[0]", " or ", " not ", "lambda: ",
		"global x\n", "1 / 0", "range(3)", "\"s\""}
	ran := 0
	for trial := 0; trial < 4000; trial++ {
		src := runtimeSeeds[rng.Intn(len(runtimeSeeds))]
		// Splice in 1-3 random tokens.
		for n := rng.Intn(3) + 1; n > 0; n-- {
			pos := rng.Intn(len(src) + 1)
			tok := mutTokens[rng.Intn(len(mutTokens))]
			src = src[:pos] + tok + src[pos:]
		}
		parsed, err := pyparser.Parse("mutant", src)
		if err != nil {
			continue
		}
		ran++
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("interpreter panicked (trial %d): %v\nsource:\n%s", trial, r, src)
				}
			}()
			in := New(vfs.New())
			in.SetFuel(300_000) // bound accidental loops
			mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
			in.RunModule(mod, parsed.Body) // error or success both fine
		}()
	}
	if ran < 100 {
		t.Errorf("only %d mutants executed — mutation set too destructive", ran)
	}
}

func TestInterpreterFuelBoundsAllLoops(t *testing.T) {
	loops := []string{
		"while True:\n    pass\n",
		"x = [1]\nwhile x:\n    x.append(1)\n",
		"def f():\n    while 1 == 1:\n        y = 0\nf()\n",
		"i = 0\nwhile i < 10:\n    i = i\n",
	}
	for _, src := range loops {
		parsed, err := pyparser.Parse("loop", src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		in := New(vfs.New())
		in.SetFuel(50_000)
		mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
		perr := in.RunModule(mod, parsed.Body)
		if perr == nil {
			t.Errorf("infinite loop terminated without error: %q", src)
		}
	}
}

func TestInterpreterIsolation(t *testing.T) {
	// Two interpreters over the same image share nothing: state mutations
	// in one are invisible to the other (the paper's per-phase process
	// isolation).
	fs := vfs.New()
	fs.Write("site-packages/state.py", "value = [0]\n")
	src := `
import state
state.value.append(1)
print(len(state.value))
`
	parsed, _ := pyparser.Parse("m", src)
	for i := 0; i < 3; i++ {
		in := New(fs)
		mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
		if perr := in.RunModule(mod, parsed.Body); perr != nil {
			t.Fatalf("run %d: %v", i, perr)
		}
		if got := in.OutputString(); got != "2\n" {
			t.Fatalf("run %d saw leaked state: %q", i, got)
		}
	}
}
