package pyruntime

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/pylang"
	"repro/internal/simtime"
	"repro/internal/vfs"
)

// Default execution parameters.
const (
	// StmtCost is the virtual time charged per executed statement.
	StmtCost = 800 * time.Nanosecond
	// DefaultFuel bounds the number of statements a single Run may execute;
	// it exists to turn accidental infinite loops in corpus code into
	// diagnosable errors instead of hangs.
	DefaultFuel = 80_000_000
	// MaxDepth bounds call recursion.
	MaxDepth = 200
)

// RemoteCall records one invocation of the remote_call builtin — the
// serverless analogue of an external side effect (S3 put, DB write, child
// lambda invoke). The debloater's oracle compares these journals in
// addition to stdout, per §5.3 of the paper.
type RemoteCall struct {
	Service string
	Op      string
	Payload string // canonical repr of the payload value
}

// ImportHook observes module executions. The profiler registers one to
// measure marginal import time and memory, mirroring how the paper patches
// CPython's import machinery with measurements "before each module
// execution".
type ImportHook interface {
	BeforeModuleExec(name string)
	AfterModuleExec(name string, err error)
}

// fatalError aborts execution through panic/recover; it is used for
// resource exhaustion that must not be catchable by Python-level code.
type fatalError struct{ err error }

// Interp is one interpreter instance: an isolated address space with its own
// module cache, clock and allocator. λ-trim's "module isolation" (§7 of the
// paper, fresh process per phase) corresponds to constructing a fresh Interp.
type Interp struct {
	Clock *simtime.Clock
	Alloc *simtime.Allocator

	// Stdout receives print output; the oracle compares its contents.
	Stdout io.Writer

	// FS is the deployment image the importer reads from.
	FS *vfs.FS

	// RemoteLog journals remote_call invocations for oracle equivalence.
	RemoteLog []RemoteCall

	modules    map[string]*ModuleV       // sys.modules
	overrides  map[string]*pylang.Module // debloater AST overlays
	astCache   *ASTCache                 // parse cache shared via SetASTCache
	hooks      []ImportHook
	builtins   *Namespace
	excClasses map[string]*ClassV

	depth     int
	fuel      int64
	idCounter int64 // id() builtin token source

	importStack []string // active imports, for cycle detection

	// Snapshot memoization state (see snapshot.go). snap is the shared
	// import-window cache; recStack holds the open recording windows; sfp
	// maps each loaded module to its state fingerprint. builtinPtrs/excPtrs
	// lazily index per-interp singletons for symbolic capture.
	snap        *SnapshotCache
	recStack    []*snapRecorder
	sfp         map[string]string
	builtinPtrs map[Value]string
	excPtrs     map[*ClassV]string

	// srcCache memoizes resolveSource + bodyFingerprint per dotted name for
	// this interpreter's lifetime. Sound because the image and the override
	// set are fixed while a run executes; SetOverride invalidates its name.
	// This keeps snapshot validation (which re-checks the fingerprint of
	// every module a cached window created) off the filesystem/hash path.
	srcCache map[string]srcCacheEnt

	// volatile names modules whose content changes on every run (Delta
	// Debugging candidates): the importer executes them live, skips their
	// import window entirely, and stops enclosing windows from recording —
	// see SetVolatile.
	volatile map[string]bool

	// engine selects the execution engine (see engine.go); resolved from the
	// process default at construction time.
	engine Engine

	// Compiled-engine arenas (see compile.go): call frames and local slot
	// vectors are bump-allocated from geometrically growing chunks and
	// released LIFO per invocation. Existing chunks are never reallocated —
	// frames hand out interior pointers — and they are retained for reuse
	// across calls, so a typical interpreter allocates a few small chunks
	// for its whole lifetime.
	frameChunks [][]frame
	frameChunk  int // current chunk index
	framePos    int // next free entry in the current frame chunk
	slotChunks  [][]Value
	slotChunk   int
	slotPos     int
}

// srcCacheEnt is a memoized module resolution; fp is filled lazily on the
// first fingerprint request (fpDone distinguishes "not yet hashed").
type srcCacheEnt struct {
	src    moduleSource
	ok     bool
	fp     string
	fpDone bool
}

// New constructs an interpreter over the given image.
func New(fs *vfs.FS) *Interp {
	in := &Interp{
		Clock:      simtime.NewClock(),
		Alloc:      simtime.NewAllocator(),
		Stdout:     &strings.Builder{},
		FS:         fs,
		modules:    make(map[string]*ModuleV),
		overrides:  make(map[string]*pylang.Module),
		astCache:   NewASTCache(),
		fuel:       DefaultFuel,
		excClasses: buildExceptionClasses(),
		engine:     DefaultEngine(),
	}
	in.builtins = in.buildBuiltins()
	return in
}

// ASTCache is a concurrency-safe parse cache keyed by path+content. It is
// shared across interpreter instances: the debloater creates a fresh Interp
// per oracle run (module isolation) but source text is immutable during a
// run, so parses can be reused — including across the goroutines of a
// parallel Delta Debugging session.
type ASTCache struct {
	mu sync.RWMutex
	m  map[string]*pylang.Module

	// Compiled-code caches (see compile.go). The debloater's rewrites
	// preserve statement identity across Delta Debugging candidates, so
	// compiled bodies are shared by every candidate and every interpreter
	// using this cache. mcode maps stable module nodes to their code (fast
	// path); bcode deduplicates module bodies by statement-pointer sequence,
	// so every DD candidate keeping the same statements — including the
	// accepted rewrite rebuilt from the winning subset — shares one
	// compilation; fcode holds compiled function/lambda bodies keyed by node.
	codeMu sync.RWMutex
	mcode  map[*pylang.Module][]cStmt
	bcode  map[string]*bodyCode
	fcode  map[pylang.Node]*funcCode
}

// NewASTCache returns an empty cache.
func NewASTCache() *ASTCache {
	return &ASTCache{
		m:     make(map[string]*pylang.Module),
		mcode: make(map[*pylang.Module][]cStmt),
		bcode: make(map[string]*bodyCode),
		fcode: make(map[pylang.Node]*funcCode),
	}
}

// Get looks up a cached parse.
func (c *ASTCache) Get(key string) (*pylang.Module, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.m[key]
	return m, ok
}

// Put stores a parse result.
func (c *ASTCache) Put(key string, mod *pylang.Module) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = mod
}

// SetASTCache shares a parse cache across interpreter instances.
func (in *Interp) SetASTCache(cache *ASTCache) { in.astCache = cache }

// SetSnapshots shares an import-window snapshot cache across interpreter
// instances. It must be called before the first Import: modules loaded
// without snapshots enabled have no state fingerprint and permanently
// invalidate windows that read them. Interpreters with import hooks ignore
// the cache (the profiler must observe live execution).
func (in *Interp) SetSnapshots(cache *SnapshotCache) {
	in.snap = cache
	if in.sfp == nil {
		in.sfp = make(map[string]string)
	}
}

// SetOverride installs an AST overlay for a module name: the importer
// executes the overlay instead of parsing the module's file. The debloater
// uses this to test candidate reductions without reprinting source on every
// DD iteration; the accepted final reduction is still printed back to the
// image.
func (in *Interp) SetOverride(name string, mod *pylang.Module) {
	in.overrides[name] = mod
	delete(in.srcCache, name)
}

// SetVolatile declares a module's content as probe-specific: snapshot
// memoization neither records nor replays its import, and any window open
// when it executes is not captured (a cached entry referencing it could
// never validate again, so recording it would only grow the cache with dead
// entries). The debloater marks each Delta Debugging candidate volatile;
// accepted reductions are stable across the remaining probes and stay
// memoizable. Simulated observables are unaffected — the module simply
// always executes live.
func (in *Interp) SetVolatile(name string) {
	if in.volatile == nil {
		in.volatile = make(map[string]bool, 1)
	}
	in.volatile[name] = true
}

// AddImportHook registers a hook observing module executions.
func (in *Interp) AddImportHook(h ImportHook) { in.hooks = append(in.hooks, h) }

// SetFuel overrides the statement budget.
func (in *Interp) SetFuel(n int64) { in.fuel = n }

// OutputString returns accumulated stdout when Stdout is the default buffer.
func (in *Interp) OutputString() string {
	if sb, ok := in.Stdout.(*strings.Builder); ok {
		return sb.String()
	}
	return ""
}

// Modules returns the loaded module table (sys.modules).
func (in *Interp) Modules() map[string]*ModuleV { return in.modules }

// frame is one execution context. Under the compiled engine, function frames
// may carry a local slot vector instead of an Env: slots holds locals indexed
// by fcode.slotOf, with nil marking an unbound local (no Value is ever a Go
// nil — None is the boxed NoneV singleton). env then points at the function's
// defining environment so slot misses resolve through the closure chain
// exactly like the walker's fresh-Env lookup.
type frame struct {
	globals *Namespace
	env     *Env // nil at module level
	module  string
	slots   []Value
	fcode   *funcCode
}

// ctrlKind describes non-linear control flow from a statement.
type ctrlKind int

const (
	ctrlNone ctrlKind = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

type ctrl struct {
	kind  ctrlKind
	value Value // for return
}

var ctrlNormal = ctrl{kind: ctrlNone}

// RunModule executes top-level statements in the context of module mod.
// It is the entry point used by the importer and by RunMain.
func (in *Interp) RunModule(mod *ModuleV, body []pylang.Stmt) (err *PyErr) {
	defer in.trapFatal(&err)
	fr := &frame{globals: mod.Dict, module: mod.Name}
	_, perr := in.execBody(fr, body, nil)
	return perr
}

// execBody executes a module-level statement list with the selected engine.
// mod, when non-nil, identifies an import-owned module body that warms up
// through the code cache (see moduleCode); a nil moduleCode result means the
// body is cold and this execution walks it instead.
func (in *Interp) execBody(fr *frame, body []pylang.Stmt, mod *pylang.Module) (ctrl, *PyErr) {
	if in.engineCompiled() {
		if code := in.astCache.moduleCode(mod, body); code != nil {
			return in.runCStmts(fr, code)
		}
	}
	return in.execStmts(fr, body)
}

// CallFunction invokes a Python function value with the given arguments,
// trapping fatal resource errors. It is the embedding API the serverless
// harness uses to call a lambda handler.
func (in *Interp) CallFunction(fn Value, args []Value) (v Value, err *PyErr) {
	defer in.trapFatal(&err)
	return in.call(fn, args, nil, pylang.Pos{})
}

func (in *Interp) trapFatal(err **PyErr) {
	if r := recover(); r != nil {
		if f, ok := r.(fatalError); ok {
			*err = in.NewExc("RuntimeError", "fatal: %v", f.err)
			return
		}
		panic(r)
	}
}

func (in *Interp) chargeStmt() {
	in.Clock.Advance(StmtCost)
	in.fuel--
	if in.fuel <= 0 {
		panic(fatalError{fmt.Errorf("statement budget exhausted")})
	}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (in *Interp) execStmts(fr *frame, body []pylang.Stmt) (ctrl, *PyErr) {
	for _, s := range body {
		c, err := in.execStmt(fr, s)
		if err != nil {
			return ctrlNormal, err
		}
		if c.kind != ctrlNone {
			return c, nil
		}
	}
	return ctrlNormal, nil
}

func (in *Interp) execStmt(fr *frame, s pylang.Stmt) (ctrl, *PyErr) {
	in.chargeStmt()
	return in.execStmtInner(fr, s)
}

// execStmtInner executes one statement after its clock/fuel charge has been
// taken. The compiled engine delegates rare constructs here so both engines
// share one implementation of their semantics.
func (in *Interp) execStmtInner(fr *frame, s pylang.Stmt) (ctrl, *PyErr) {
	switch v := s.(type) {
	case *pylang.PassStmt:
		return ctrlNormal, nil
	case *pylang.ExprStmt:
		_, err := in.eval(fr, v.Value)
		return ctrlNormal, err
	case *pylang.AssignStmt:
		value, err := in.eval(fr, v.Value)
		if err != nil {
			return ctrlNormal, err
		}
		for _, t := range v.Targets {
			if err := in.assign(fr, t, value); err != nil {
				return ctrlNormal, err
			}
		}
		return ctrlNormal, nil
	case *pylang.AugAssignStmt:
		cur, err := in.eval(fr, v.Target)
		if err != nil {
			return ctrlNormal, err
		}
		rhs, err := in.eval(fr, v.Value)
		if err != nil {
			return ctrlNormal, err
		}
		res, err := in.binop(v.Op, cur, rhs, v.Pos)
		if err != nil {
			return ctrlNormal, err
		}
		return ctrlNormal, in.assign(fr, v.Target, res)
	case *pylang.ReturnStmt:
		var value Value = None
		if v.Value != nil {
			var err *PyErr
			value, err = in.eval(fr, v.Value)
			if err != nil {
				return ctrlNormal, err
			}
		}
		return ctrl{kind: ctrlReturn, value: value}, nil
	case *pylang.BreakStmt:
		return ctrl{kind: ctrlBreak}, nil
	case *pylang.ContinueStmt:
		return ctrl{kind: ctrlContinue}, nil
	case *pylang.IfStmt:
		cond, err := in.eval(fr, v.Cond)
		if err != nil {
			return ctrlNormal, err
		}
		if Truth(cond) {
			return in.execStmts(fr, v.Body)
		}
		return in.execStmts(fr, v.Else)
	case *pylang.WhileStmt:
		for {
			cond, err := in.eval(fr, v.Cond)
			if err != nil {
				return ctrlNormal, err
			}
			if !Truth(cond) {
				break
			}
			c, err := in.execStmts(fr, v.Body)
			if err != nil {
				return ctrlNormal, err
			}
			if c.kind == ctrlBreak {
				return ctrlNormal, nil
			}
			if c.kind == ctrlReturn {
				return c, nil
			}
			in.chargeStmt() // loop back-edge
		}
		return in.execStmts(fr, v.Else)
	case *pylang.ForStmt:
		iter, err := in.eval(fr, v.Iter)
		if err != nil {
			return ctrlNormal, err
		}
		elems, perr := in.iterate(iter, v.Pos)
		if perr != nil {
			return ctrlNormal, perr
		}
		broke := false
		for _, elem := range elems {
			if err := in.assign(fr, v.Target, elem); err != nil {
				return ctrlNormal, err
			}
			c, err := in.execStmts(fr, v.Body)
			if err != nil {
				return ctrlNormal, err
			}
			if c.kind == ctrlBreak {
				broke = true
				break
			}
			if c.kind == ctrlReturn {
				return c, nil
			}
			in.chargeStmt()
		}
		if !broke {
			return in.execStmts(fr, v.Else)
		}
		return ctrlNormal, nil
	case *pylang.DefStmt:
		defaults, derr := in.evalDefaults(fr, v.Params)
		if derr != nil {
			return ctrlNormal, derr
		}
		fn := &FuncV{
			Name: v.Name, Params: v.Params, Body: v.Body,
			Globals: fr.globals, Module: fr.module, Env: fr.env,
			Defaults: defaults,
		}
		in.attachCode(fn, v)
		in.Alloc.Alloc(SizeOf(fn) + int64(60*len(v.Body)))
		var value Value = fn
		// Apply decorators innermost-first.
		for i := len(v.Decorators) - 1; i >= 0; i-- {
			dec, err := in.eval(fr, v.Decorators[i])
			if err != nil {
				return ctrlNormal, err
			}
			value, err = in.call(dec, []Value{value}, nil, v.Pos)
			if err != nil {
				return ctrlNormal, err
			}
		}
		in.bind(fr, v.Name, value)
		return ctrlNormal, nil
	case *pylang.ClassStmt:
		return ctrlNormal, in.execClass(fr, v)
	case *pylang.ImportStmt:
		return in.execImport(fr, v)
	case *pylang.FromImportStmt:
		return ctrlNormal, in.execFromImport(fr, v)
	case *pylang.RaiseStmt:
		if v.Value == nil {
			return ctrlNormal, in.NewExc("RuntimeError", "no active exception to re-raise")
		}
		val, err := in.eval(fr, v.Value)
		if err != nil {
			return ctrlNormal, err
		}
		return ctrlNormal, in.raiseValue(val, v.Pos, fr.module)
	case *pylang.TryStmt:
		return in.execTry(fr, v)
	case *pylang.GlobalStmt:
		if fr.env != nil {
			if fr.env.globalNames == nil {
				fr.env.globalNames = make(map[string]bool)
			}
			for _, n := range v.Names {
				fr.env.globalNames[n] = true
			}
		}
		return ctrlNormal, nil
	case *pylang.DelStmt:
		for _, t := range v.Targets {
			if err := in.deleteTarget(fr, t); err != nil {
				return ctrlNormal, err
			}
		}
		return ctrlNormal, nil
	case *pylang.AssertStmt:
		cond, err := in.eval(fr, v.Cond)
		if err != nil {
			return ctrlNormal, err
		}
		if !Truth(cond) {
			msg := ""
			if v.Msg != nil {
				m, err := in.eval(fr, v.Msg)
				if err != nil {
					return ctrlNormal, err
				}
				msg = Str(m)
			}
			return ctrlNormal, in.NewExc("AssertionError", "%s", msg)
		}
		return ctrlNormal, nil
	}
	return ctrlNormal, in.NewExc("RuntimeError", "unknown statement %T", s)
}

// execImport implements "import a.b [as c]", shared by both engines.
func (in *Interp) execImport(fr *frame, v *pylang.ImportStmt) (ctrl, *PyErr) {
	for _, alias := range v.Names {
		mod, err := in.Import(alias.Name)
		if err != nil {
			return ctrlNormal, err
		}
		if alias.AsName != "" {
			// "import a.b as c" binds the leaf module.
			in.bind(fr, alias.AsName, mod)
		} else {
			// "import a.b" binds the root package.
			root := alias.Name
			if i := strings.IndexByte(root, '.'); i >= 0 {
				root = root[:i]
			}
			rootMod, ok := in.modules[root]
			if !ok {
				return ctrlNormal, in.NewExc("ImportError", "root module %s missing", root)
			}
			in.bind(fr, root, rootMod)
		}
	}
	return ctrlNormal, nil
}

func (in *Interp) execClass(fr *frame, v *pylang.ClassStmt) *PyErr {
	var base *ClassV
	if len(v.Bases) > 0 {
		baseVal, err := in.eval(fr, v.Bases[0])
		if err != nil {
			return err
		}
		bc, ok := baseVal.(*ClassV)
		if !ok {
			return in.NewExc("TypeError", "class base must be a class, not %s", baseVal.TypeName())
		}
		base = bc
	}
	class := &ClassV{Name: v.Name, Base: base, Dict: NewNamespace(), Module: fr.module}
	if base != nil && base.Exception {
		class.Exception = true
	}
	in.Alloc.Alloc(SizeOf(class))
	// Execute the class body with the class dict as its local namespace.
	// The env tracks insertion order: populating the class dict from Go map
	// iteration would randomize attribute order (and with it dir() output
	// and method resolution diagnostics) across runs.
	classEnv := NewEnv(fr.env)
	classEnv.track = true
	classFrame := &frame{globals: fr.globals, env: classEnv, module: fr.module}
	if _, err := in.execStmts(classFrame, v.Body); err != nil {
		return err
	}
	for _, name := range classEnv.order {
		class.Dict.Set(name, classEnv.vars[name])
	}
	var value Value = class
	for i := len(v.Decorators) - 1; i >= 0; i-- {
		dec, err := in.eval(fr, v.Decorators[i])
		if err != nil {
			return err
		}
		var perr *PyErr
		value, perr = in.call(dec, []Value{value}, nil, v.Pos)
		if perr != nil {
			return perr
		}
	}
	in.bind(fr, v.Name, value)
	return nil
}

func (in *Interp) execTry(fr *frame, v *pylang.TryStmt) (ctrl, *PyErr) {
	c, err := in.execStmts(fr, v.Body)
	if err != nil {
		handled := false
		for _, clause := range v.Excepts {
			match, merr := in.exceptMatches(fr, clause, err)
			if merr != nil {
				err = merr
				break
			}
			if !match {
				continue
			}
			handled = true
			if clause.Name != "" {
				in.bind(fr, clause.Name, err.Value)
			}
			ctx := err
			c, err = in.execStmts(fr, clause.Body)
			// Implicit chaining (CPython's __context__): an exception
			// escaping the handler body carries the one it was handling.
			chainCause(err, ctx)
			break
		}
		if !handled && err != nil && len(v.Finally) > 0 {
			// fall through to finally with the error pending
		}
		_ = handled
	} else if c.kind == ctrlNone && len(v.Else) > 0 {
		c, err = in.execStmts(fr, v.Else)
	}
	if len(v.Finally) > 0 {
		fc, ferr := in.execStmts(fr, v.Finally)
		if ferr != nil {
			return ctrlNormal, ferr // finally's error supersedes
		}
		if fc.kind != ctrlNone {
			return fc, nil
		}
	}
	return c, err
}

func (in *Interp) exceptMatches(fr *frame, clause pylang.ExceptClause, err *PyErr) (bool, *PyErr) {
	if clause.Type == nil {
		return true, nil
	}
	typeVal, terr := in.eval(fr, clause.Type)
	if terr != nil {
		return false, terr
	}
	return in.matchExcClasses(typeVal, err)
}

// matchExcClasses reports whether err matches an evaluated except type
// (a class or tuple of classes); shared by both engines.
func (in *Interp) matchExcClasses(typeVal Value, err *PyErr) (bool, *PyErr) {
	classes := []Value{typeVal}
	if tup, ok := typeVal.(*TupleV); ok {
		classes = tup.Elems
	}
	for _, cv := range classes {
		c, ok := cv.(*ClassV)
		if !ok {
			return false, in.NewExc("TypeError", "catching %s is not allowed", cv.TypeName())
		}
		if err.Matches(c) {
			return true, nil
		}
	}
	return false, nil
}

func (in *Interp) raiseValue(val Value, pos pylang.Pos, where string) *PyErr {
	switch t := val.(type) {
	case *InstanceV:
		if t.Class.Exception {
			return &PyErr{Value: t, Pos: pos, Where: where}
		}
		return in.NewExc("TypeError", "exceptions must derive from BaseException")
	case *ClassV:
		if t.Exception {
			inst, err := in.instantiate(t, nil, nil, pos)
			if err != nil {
				return err
			}
			return &PyErr{Value: inst.(*InstanceV), Pos: pos, Where: where}
		}
		return in.NewExc("TypeError", "exceptions must derive from BaseException")
	}
	return in.NewExc("TypeError", "exceptions must derive from BaseException")
}

// evalDefaults evaluates parameter defaults in the defining frame,
// returning a slice aligned with params (nil = required parameter).
func (in *Interp) evalDefaults(fr *frame, params []pylang.Param) ([]Value, *PyErr) {
	var defaults []Value
	for i, p := range params {
		if p.Default == nil {
			continue
		}
		if defaults == nil {
			defaults = make([]Value, len(params))
		}
		dv, err := in.eval(fr, p.Default)
		if err != nil {
			return nil, err
		}
		defaults[i] = dv
	}
	return defaults, nil
}

// bind assigns a simple name in the correct scope.
func (in *Interp) bind(fr *frame, name string, v Value) {
	if fr.slots != nil {
		// Slot frames have no local env and no global declarations (both
		// disqualify slot compilation); every bindable name has a slot.
		if i, ok := fr.fcode.slotOf[name]; ok {
			fr.slots[i] = v
			return
		}
	} else if fr.env != nil && (fr.env.globalNames == nil || !fr.env.globalNames[name]) {
		fr.env.set(name, v)
		return
	}
	if _, exists := fr.globals.Get(name); !exists {
		in.Alloc.Alloc(64) // new namespace slot
	}
	if in.snap != nil {
		// A global bind outside the module's own open import window (e.g. a
		// cross-module `global` assignment) mutates memoized state.
		if n := len(in.recStack); n == 0 || in.recStack[n-1].name != fr.module {
			in.notePoisonModule(fr.module)
		}
	}
	fr.globals.Set(name, v)
}

func (in *Interp) assign(fr *frame, target pylang.Expr, value Value) *PyErr {
	switch t := target.(type) {
	case *pylang.NameExpr:
		in.bind(fr, t.Name, value)
		return nil
	case *pylang.AttrExpr:
		obj, err := in.eval(fr, t.Value)
		if err != nil {
			return err
		}
		return in.setAttr(obj, t.Attr, value, t.Pos)
	case *pylang.IndexExpr:
		obj, err := in.eval(fr, t.Value)
		if err != nil {
			return err
		}
		if t.Slice {
			return in.NewExc("TypeError", "slice assignment is not supported")
		}
		idx, err := in.eval(fr, t.Index)
		if err != nil {
			return err
		}
		return in.setItem(obj, idx, value, t.Pos)
	case *pylang.TupleExpr:
		return in.unpack(fr, t.Elems, value, t.Pos)
	case *pylang.ListExpr:
		return in.unpack(fr, t.Elems, value, t.Pos)
	}
	return in.NewExc("SyntaxError", "cannot assign to %T", target)
}

func (in *Interp) unpack(fr *frame, targets []pylang.Expr, value Value, pos pylang.Pos) *PyErr {
	elems, err := in.iterate(value, pos)
	if err != nil {
		return err
	}
	if len(elems) != len(targets) {
		return in.NewExc("ValueError", "cannot unpack %d values into %d targets", len(elems), len(targets))
	}
	for i, t := range targets {
		if err := in.assign(fr, t, elems[i]); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) deleteTarget(fr *frame, target pylang.Expr) *PyErr {
	switch t := target.(type) {
	case *pylang.NameExpr:
		if fr.env != nil {
			if _, ok := fr.env.vars[t.Name]; ok {
				fr.env.del(t.Name)
				return nil
			}
		}
		if fr.globals.Delete(t.Name) {
			in.Alloc.Free(64)
			return nil
		}
		return in.NewExc("NameError", "name '%s' is not defined", t.Name)
	case *pylang.AttrExpr:
		obj, err := in.eval(fr, t.Value)
		if err != nil {
			return err
		}
		switch o := obj.(type) {
		case *ModuleV:
			if !o.Dict.Delete(t.Attr) {
				return in.NewExc("AttributeError", "module '%s' has no attribute '%s'", o.Name, t.Attr)
			}
			in.notePoisonModule(o.Name)
			return nil
		case *InstanceV:
			if !o.Dict.Delete(t.Attr) {
				return in.NewExc("AttributeError", "'%s' object has no attribute '%s'", o.Class.Name, t.Attr)
			}
			return nil
		case *ClassV:
			if !o.Dict.Delete(t.Attr) {
				return in.NewExc("AttributeError", "type '%s' has no attribute '%s'", o.Name, t.Attr)
			}
			return nil
		}
		return in.NewExc("TypeError", "cannot delete attribute of %s", obj.TypeName())
	case *pylang.IndexExpr:
		obj, err := in.eval(fr, t.Value)
		if err != nil {
			return err
		}
		idx, err := in.eval(fr, t.Index)
		if err != nil {
			return err
		}
		if d, ok := obj.(*DictV); ok {
			if !d.Delete(idx) {
				return in.NewExc("KeyError", "%s", Repr(idx))
			}
			return nil
		}
		return in.NewExc("TypeError", "cannot delete item of %s", obj.TypeName())
	}
	return in.NewExc("SyntaxError", "cannot delete %T", target)
}

// iterate materializes an iterable into a slice.
func (in *Interp) iterate(v Value, pos pylang.Pos) ([]Value, *PyErr) {
	switch t := v.(type) {
	case *ListV:
		out := make([]Value, len(t.Elems))
		copy(out, t.Elems)
		return out, nil
	case *TupleV:
		return t.Elems, nil
	case StrV:
		out := make([]Value, 0, len(t))
		for _, r := range string(t) {
			out = append(out, StrV(string(r)))
		}
		return out, nil
	case *DictV:
		items := t.Items()
		out := make([]Value, len(items))
		for i, kv := range items {
			out[i] = kv[0]
		}
		return out, nil
	case *RangeV:
		return t.materialize(), nil
	}
	return nil, in.NewExc("TypeError", "'%s' object is not iterable", v.TypeName())
}

// RangeV is a lazy integer range.
type RangeV struct {
	Start, Stop, Step int64
}

func (*RangeV) TypeName() string { return "range" }

// Len returns the number of elements in the range.
func (r *RangeV) Len() int64 {
	if r.Step > 0 {
		if r.Stop <= r.Start {
			return 0
		}
		return (r.Stop - r.Start + r.Step - 1) / r.Step
	}
	if r.Stop >= r.Start {
		return 0
	}
	return (r.Start - r.Stop - r.Step - 1) / (-r.Step)
}

func (r *RangeV) materialize() []Value {
	n := r.Len()
	out := make([]Value, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, IntV(r.Start+i*r.Step))
	}
	return out
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

func (in *Interp) eval(fr *frame, e pylang.Expr) (Value, *PyErr) {
	switch v := e.(type) {
	case *pylang.NameExpr:
		return in.lookup(fr, v.Name, v.Pos)
	case *pylang.IntLit:
		return IntV(v.Value), nil
	case *pylang.FloatLit:
		return FloatV(v.Value), nil
	case *pylang.StringLit:
		return StrV(v.Value), nil
	case *pylang.BoolLit:
		return BoolV(v.Value), nil
	case *pylang.NoneLit:
		return None, nil
	case *pylang.AttrExpr:
		obj, err := in.eval(fr, v.Value)
		if err != nil {
			return nil, err
		}
		return in.getAttr(obj, v.Attr, v.Pos)
	case *pylang.IndexExpr:
		obj, err := in.eval(fr, v.Value)
		if err != nil {
			return nil, err
		}
		if v.Slice {
			return in.evalSlice(fr, obj, v)
		}
		idx, err := in.eval(fr, v.Index)
		if err != nil {
			return nil, err
		}
		return in.getItem(obj, idx, v.Pos)
	case *pylang.CallExpr:
		return in.evalCall(fr, v)
	case *pylang.BinOp:
		left, err := in.eval(fr, v.Left)
		if err != nil {
			return nil, err
		}
		right, err := in.eval(fr, v.Right)
		if err != nil {
			return nil, err
		}
		return in.binop(v.Op, left, right, v.Pos)
	case *pylang.BoolOp:
		var last Value = None
		for i, operand := range v.Values {
			val, err := in.eval(fr, operand)
			if err != nil {
				return nil, err
			}
			last = val
			if v.Op == pylang.KwAnd && !Truth(val) {
				return val, nil
			}
			if v.Op == pylang.KwOr && Truth(val) {
				return val, nil
			}
			_ = i
		}
		return last, nil
	case *pylang.UnaryOp:
		operand, err := in.eval(fr, v.Operand)
		if err != nil {
			return nil, err
		}
		return in.unary(v.Op, operand, v.Pos)
	case *pylang.Compare:
		return in.compare(fr, v)
	case *pylang.ListExpr:
		elems := make([]Value, len(v.Elems))
		for i, el := range v.Elems {
			val, err := in.eval(fr, el)
			if err != nil {
				return nil, err
			}
			elems[i] = val
		}
		return &ListV{Elems: elems}, nil
	case *pylang.TupleExpr:
		elems := make([]Value, len(v.Elems))
		for i, el := range v.Elems {
			val, err := in.eval(fr, el)
			if err != nil {
				return nil, err
			}
			elems[i] = val
		}
		return &TupleV{Elems: elems}, nil
	case *pylang.DictExpr:
		d := NewDict()
		for _, it := range v.Items {
			key, err := in.eval(fr, it.Key)
			if err != nil {
				return nil, err
			}
			val, err := in.eval(fr, it.Value)
			if err != nil {
				return nil, err
			}
			if !d.Set(key, val) {
				return nil, in.NewExc("TypeError", "unhashable type: '%s'", key.TypeName())
			}
		}
		return d, nil
	case *pylang.CondExpr:
		cond, err := in.eval(fr, v.Cond)
		if err != nil {
			return nil, err
		}
		if Truth(cond) {
			return in.eval(fr, v.Body)
		}
		return in.eval(fr, v.OrElse)
	case *pylang.LambdaExpr:
		defaults, derr := in.evalDefaults(fr, v.Params)
		if derr != nil {
			return nil, derr
		}
		fn := &FuncV{Name: "<lambda>", Params: v.Params, Expr: v.Body,
			Globals: fr.globals, Module: fr.module, Env: fr.env,
			Defaults: defaults}
		in.attachCode(fn, v)
		in.Alloc.Alloc(SizeOf(fn))
		return fn, nil
	}
	return nil, in.NewExc("RuntimeError", "unknown expression %T", e)
}

func (in *Interp) lookup(fr *frame, name string, pos pylang.Pos) (Value, *PyErr) {
	if fr.slots != nil {
		// Slot frame: locals live in slots; a miss (unbound local or free
		// variable) resolves through the defining env chain, matching the
		// walker's fresh-Env-with-parent lookup. The frame's env is the
		// *defining* scope, so its global declarations do not apply here.
		if i, ok := fr.fcode.slotOf[name]; ok {
			if v := fr.slots[i]; v != nil {
				return v, nil
			}
		}
		if fr.env != nil {
			if v, ok := fr.env.lookup(name); ok {
				return v, nil
			}
		}
	} else if fr.env != nil && (fr.env.globalNames == nil || !fr.env.globalNames[name]) {
		if v, ok := fr.env.lookup(name); ok {
			return v, nil
		}
	}
	if v, ok := fr.globals.Get(name); ok {
		return v, nil
	}
	if v, ok := in.builtins.Get(name); ok {
		return v, nil
	}
	if c, ok := in.excClasses[name]; ok {
		return c, nil
	}
	return nil, &PyErr{Value: in.NewExc("NameError", "name '%s' is not defined", name).Value, Pos: pos, Where: fr.module}
}

func (in *Interp) evalCall(fr *frame, v *pylang.CallExpr) (Value, *PyErr) {
	fn, err := in.eval(fr, v.Func)
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(v.Args))
	for i, a := range v.Args {
		val, err := in.eval(fr, a)
		if err != nil {
			return nil, err
		}
		args[i] = val
	}
	var kwargs map[string]Value
	if len(v.Keywords) > 0 {
		kwargs = make(map[string]Value, len(v.Keywords))
		for _, kw := range v.Keywords {
			val, err := in.eval(fr, kw.Value)
			if err != nil {
				return nil, err
			}
			kwargs[kw.Name] = val
		}
	}
	return in.call(fn, args, kwargs, v.Pos)
}

// call dispatches a call on any callable value.
func (in *Interp) call(fn Value, args []Value, kwargs map[string]Value, pos pylang.Pos) (Value, *PyErr) {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > MaxDepth {
		return nil, in.NewExc("RecursionError", "maximum recursion depth exceeded")
	}
	switch f := fn.(type) {
	case *BuiltinV:
		return f.Fn(in, args, kwargs)
	case *FuncV:
		return in.callFunc(f, args, kwargs, pos)
	case *BoundMethodV:
		newArgs := make([]Value, 0, len(args)+1)
		newArgs = append(newArgs, f.Recv)
		newArgs = append(newArgs, args...)
		return in.callFunc(f.Fn, newArgs, kwargs, pos)
	case *ClassV:
		return in.instantiate(f, args, kwargs, pos)
	case *InstanceV:
		if callV, ok := in.classLookup(f.Class, "__call__"); ok {
			if callFn, ok := callV.(*FuncV); ok {
				newArgs := make([]Value, 0, len(args)+1)
				newArgs = append(newArgs, f)
				newArgs = append(newArgs, args...)
				return in.callFunc(callFn, newArgs, kwargs, pos)
			}
		}
	}
	return nil, in.NewExc("TypeError", "'%s' object is not callable", fn.TypeName())
}

func (in *Interp) callFunc(f *FuncV, args []Value, kwargs map[string]Value, pos pylang.Pos) (Value, *PyErr) {
	if in.engineCompiled() {
		code := f.code
		if code == nil && f.node != nil {
			// Deferred from definition time: most defined functions are
			// never called, so the holder lookup happens here, once.
			code = in.astCache.funcHolder(f.node)
			f.code = code
		}
		if code != nil {
			code.ensure(in.astCache)
			if !code.useWalker {
				return in.callCompiled(f, code, args, kwargs)
			}
		}
	}
	env := NewEnv(f.Env)
	// Bind positional parameters.
	if len(args) > len(f.Params) {
		return nil, in.NewExc("TypeError", "%s() takes %d arguments but %d were given",
			f.Name, len(f.Params), len(args))
	}
	bound := make(map[string]bool, len(f.Params))
	for i, a := range args {
		env.vars[f.Params[i].Name] = a
		bound[f.Params[i].Name] = true
	}
	// Keyword arguments, in sorted order: with two or more invalid keywords
	// the raised error would otherwise depend on Go map iteration order.
	for _, name := range sortedKwargKeys(kwargs) {
		val := kwargs[name]
		found := false
		for _, p := range f.Params {
			if p.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, in.NewExc("TypeError", "%s() got an unexpected keyword argument '%s'", f.Name, name)
		}
		if bound[name] {
			return nil, in.NewExc("TypeError", "%s() got multiple values for argument '%s'", f.Name, name)
		}
		env.vars[name] = val
		bound[name] = true
	}
	// Defaults (evaluated once at definition time, per CPython).
	fr := &frame{globals: f.Globals, env: env, module: f.Module}
	for i, p := range f.Params {
		if bound[p.Name] {
			continue
		}
		if i >= len(f.Defaults) || f.Defaults[i] == nil {
			return nil, in.NewExc("TypeError", "%s() missing required argument: '%s'", f.Name, p.Name)
		}
		env.vars[p.Name] = f.Defaults[i]
	}
	if f.Cost > 0 {
		in.Clock.Advance(time.Duration(f.Cost))
	}
	if f.Expr != nil { // lambda
		return in.eval(fr, f.Expr)
	}
	c, err := in.execStmts(fr, f.Body)
	if err != nil {
		return nil, err
	}
	if c.kind == ctrlReturn {
		return c.value, nil
	}
	return None, nil
}

func (in *Interp) instantiate(c *ClassV, args []Value, kwargs map[string]Value, pos pylang.Pos) (Value, *PyErr) {
	inst := &InstanceV{Class: c, Dict: NewNamespace()}
	in.Alloc.Alloc(56)
	if c.Exception {
		inst.Dict.Set("args", &TupleV{Elems: args})
		// A user-defined __init__ may still run below.
	}
	if initV, ok := in.classLookup(c, "__init__"); ok {
		initFn, ok := initV.(*FuncV)
		if !ok {
			return nil, in.NewExc("TypeError", "__init__ must be a function")
		}
		newArgs := make([]Value, 0, len(args)+1)
		newArgs = append(newArgs, inst)
		newArgs = append(newArgs, args...)
		if _, err := in.callFunc(initFn, newArgs, kwargs, pos); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

func (in *Interp) classLookup(c *ClassV, name string) (Value, bool) {
	for k := c; k != nil; k = k.Base {
		if v, ok := k.Dict.Get(name); ok {
			return v, true
		}
	}
	return nil, false
}

// getAttr implements attribute access across all object kinds.
func (in *Interp) getAttr(obj Value, name string, pos pylang.Pos) (Value, *PyErr) {
	switch o := obj.(type) {
	case *ModuleV:
		if v, ok := o.Dict.Get(name); ok {
			return v, nil
		}
		// Accessing a not-yet-imported submodule of a package does not
		// auto-import in Python; it raises AttributeError. (λ-trim's
		// fallback relies on exactly this error surfacing.)
		return nil, &PyErr{Value: in.NewExc("AttributeError",
			"module '%s' has no attribute '%s'", o.Name, name).Value, Pos: pos}
	case *InstanceV:
		if v, ok := o.Dict.Get(name); ok {
			return v, nil
		}
		if v, ok := in.classLookup(o.Class, name); ok {
			if fn, isFn := v.(*FuncV); isFn {
				return &BoundMethodV{Recv: o, Fn: fn}, nil
			}
			return v, nil
		}
		return nil, &PyErr{Value: in.NewExc("AttributeError",
			"'%s' object has no attribute '%s'", o.Class.Name, name).Value, Pos: pos}
	case *ClassV:
		if name == "__name__" {
			return StrV(o.Name), nil
		}
		if v, ok := in.classLookup(o, name); ok {
			return v, nil
		}
		return nil, &PyErr{Value: in.NewExc("AttributeError",
			"type object '%s' has no attribute '%s'", o.Name, name).Value, Pos: pos}
	case StrV:
		if m, ok := strMethod(in, o, name); ok {
			return m, nil
		}
	case *ListV:
		if m, ok := listMethod(in, o, name); ok {
			return m, nil
		}
	case *DictV:
		if m, ok := dictMethod(in, o, name); ok {
			return m, nil
		}
	}
	return nil, &PyErr{Value: in.NewExc("AttributeError",
		"'%s' object has no attribute '%s'", obj.TypeName(), name).Value, Pos: pos}
}

func (in *Interp) setAttr(obj Value, name string, value Value, pos pylang.Pos) *PyErr {
	switch o := obj.(type) {
	case *ModuleV:
		if _, exists := o.Dict.Get(name); !exists {
			in.Alloc.Alloc(64)
		}
		in.notePoisonModule(o.Name)
		o.Dict.Set(name, value)
		return nil
	case *InstanceV:
		if _, exists := o.Dict.Get(name); !exists {
			in.Alloc.Alloc(64)
		}
		o.Dict.Set(name, value)
		return nil
	case *ClassV:
		// CPython forbids mutating built-in types; enforcing that here also
		// lets all interpreters share one set of builtin class objects.
		if o.Module == "builtins" {
			return in.NewExc("TypeError",
				"cannot set '%s' attribute of immutable type '%s'", name, o.Name)
		}
		o.Dict.Set(name, value)
		return nil
	}
	return in.NewExc("AttributeError", "cannot set attribute on '%s' object", obj.TypeName())
}

func (in *Interp) getItem(obj, idx Value, pos pylang.Pos) (Value, *PyErr) {
	switch o := obj.(type) {
	case *ListV:
		i, err := in.seqIndex(idx, len(o.Elems), pos)
		if err != nil {
			return nil, err
		}
		return o.Elems[i], nil
	case *TupleV:
		i, err := in.seqIndex(idx, len(o.Elems), pos)
		if err != nil {
			return nil, err
		}
		return o.Elems[i], nil
	case StrV:
		runes := []rune(string(o))
		i, err := in.seqIndex(idx, len(runes), pos)
		if err != nil {
			return nil, err
		}
		return StrV(string(runes[i])), nil
	case *DictV:
		v, ok := o.Get(idx)
		if !ok {
			return nil, in.NewExc("KeyError", "%s", Repr(idx))
		}
		return v, nil
	}
	return nil, in.NewExc("TypeError", "'%s' object is not subscriptable", obj.TypeName())
}

func (in *Interp) setItem(obj, idx, value Value, pos pylang.Pos) *PyErr {
	switch o := obj.(type) {
	case *ListV:
		i, err := in.seqIndex(idx, len(o.Elems), pos)
		if err != nil {
			return err
		}
		o.Elems[i] = value
		return nil
	case *DictV:
		if !o.Set(idx, value) {
			return in.NewExc("TypeError", "unhashable type: '%s'", idx.TypeName())
		}
		return nil
	}
	return in.NewExc("TypeError", "'%s' object does not support item assignment", obj.TypeName())
}

func (in *Interp) seqIndex(idx Value, n int, pos pylang.Pos) (int, *PyErr) {
	iv, ok := asInt(idx)
	if !ok {
		return 0, in.NewExc("TypeError", "indices must be integers, not %s", idx.TypeName())
	}
	i := int(iv)
	if i < 0 {
		i += n
	}
	if i < 0 || i >= n {
		return 0, in.NewExc("IndexError", "index out of range")
	}
	return i, nil
}

func (in *Interp) evalSlice(fr *frame, obj Value, v *pylang.IndexExpr) (Value, *PyErr) {
	length := 0
	switch o := obj.(type) {
	case *ListV:
		length = len(o.Elems)
	case *TupleV:
		length = len(o.Elems)
	case StrV:
		length = len(o)
	default:
		return nil, in.NewExc("TypeError", "'%s' object is not sliceable", obj.TypeName())
	}
	low, high := 0, length
	if v.Low != nil {
		lv, err := in.eval(fr, v.Low)
		if err != nil {
			return nil, err
		}
		iv, ok := asInt(lv)
		if !ok {
			return nil, in.NewExc("TypeError", "slice indices must be integers")
		}
		low = clampIndex(int(iv), length)
	}
	if v.High != nil {
		hv, err := in.eval(fr, v.High)
		if err != nil {
			return nil, err
		}
		iv, ok := asInt(hv)
		if !ok {
			return nil, in.NewExc("TypeError", "slice indices must be integers")
		}
		high = clampIndex(int(iv), length)
	}
	if high < low {
		high = low
	}
	switch o := obj.(type) {
	case *ListV:
		out := make([]Value, high-low)
		copy(out, o.Elems[low:high])
		return &ListV{Elems: out}, nil
	case *TupleV:
		out := make([]Value, high-low)
		copy(out, o.Elems[low:high])
		return &TupleV{Elems: out}, nil
	case StrV:
		return StrV(string(o)[low:high]), nil
	}
	return nil, in.NewExc("TypeError", "unreachable")
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func asInt(v Value) (int64, bool) {
	switch t := v.(type) {
	case IntV:
		return int64(t), true
	case BoolV:
		return boolToInt(bool(t)), true
	}
	return 0, false
}

func asFloat(v Value) (float64, bool) {
	switch t := v.(type) {
	case IntV:
		return float64(t), true
	case FloatV:
		return float64(t), true
	case BoolV:
		return float64(boolToInt(bool(t))), true
	}
	return 0, false
}

// binop implements arithmetic and sequence operators.
func (in *Interp) binop(op pylang.Kind, a, b Value, pos pylang.Pos) (Value, *PyErr) {
	// String concatenation and repetition.
	if op == pylang.Plus {
		if sa, ok := a.(StrV); ok {
			sb, ok := b.(StrV)
			if !ok {
				return nil, in.NewExc("TypeError", "can only concatenate str to str, not %s", b.TypeName())
			}
			return sa + sb, nil
		}
		if la, ok := a.(*ListV); ok {
			lb, ok := b.(*ListV)
			if !ok {
				return nil, in.NewExc("TypeError", "can only concatenate list to list")
			}
			out := make([]Value, 0, len(la.Elems)+len(lb.Elems))
			out = append(out, la.Elems...)
			out = append(out, lb.Elems...)
			return &ListV{Elems: out}, nil
		}
		if ta, ok := a.(*TupleV); ok {
			tb, ok := b.(*TupleV)
			if !ok {
				return nil, in.NewExc("TypeError", "can only concatenate tuple to tuple")
			}
			out := make([]Value, 0, len(ta.Elems)+len(tb.Elems))
			out = append(out, ta.Elems...)
			out = append(out, tb.Elems...)
			return &TupleV{Elems: out}, nil
		}
	}
	if op == pylang.Star {
		if sa, ok := a.(StrV); ok {
			if n, ok := asInt(b); ok {
				if n < 0 {
					n = 0
				}
				return StrV(strings.Repeat(string(sa), int(n))), nil
			}
		}
		if n, ok := asInt(a); ok {
			if sb, ok := b.(StrV); ok {
				if n < 0 {
					n = 0
				}
				return StrV(strings.Repeat(string(sb), int(n))), nil
			}
		}
		if la, ok := a.(*ListV); ok {
			if n, ok := asInt(b); ok {
				var out []Value
				for i := int64(0); i < n; i++ {
					out = append(out, la.Elems...)
				}
				return &ListV{Elems: out}, nil
			}
		}
	}
	// String formatting with %.
	if op == pylang.Percent {
		if sa, ok := a.(StrV); ok {
			return in.formatPercent(sa, b)
		}
	}
	// Numeric paths.
	ai, aIsInt := a.(IntV)
	bi, bIsInt := b.(IntV)
	if ab, ok := a.(BoolV); ok {
		ai, aIsInt = IntV(boolToInt(bool(ab))), true
	}
	if bb, ok := b.(BoolV); ok {
		bi, bIsInt = IntV(boolToInt(bool(bb))), true
	}
	if aIsInt && bIsInt {
		switch op {
		case pylang.Plus:
			return ai + bi, nil
		case pylang.Minus:
			return ai - bi, nil
		case pylang.Star:
			return ai * bi, nil
		case pylang.Slash:
			if bi == 0 {
				return nil, in.NewExc("ZeroDivisionError", "division by zero")
			}
			return FloatV(float64(ai) / float64(bi)), nil
		case pylang.DoubleSlash:
			if bi == 0 {
				return nil, in.NewExc("ZeroDivisionError", "integer division or modulo by zero")
			}
			return IntV(floorDiv(int64(ai), int64(bi))), nil
		case pylang.Percent:
			if bi == 0 {
				return nil, in.NewExc("ZeroDivisionError", "integer division or modulo by zero")
			}
			return IntV(pyMod(int64(ai), int64(bi))), nil
		case pylang.DoubleStar:
			if bi >= 0 {
				return IntV(intPow(int64(ai), int64(bi))), nil
			}
			return FloatV(math.Pow(float64(ai), float64(bi))), nil
		}
	}
	af, aok := asFloat(a)
	bf, bok := asFloat(b)
	if aok && bok {
		switch op {
		case pylang.Plus:
			return FloatV(af + bf), nil
		case pylang.Minus:
			return FloatV(af - bf), nil
		case pylang.Star:
			return FloatV(af * bf), nil
		case pylang.Slash:
			if bf == 0 {
				return nil, in.NewExc("ZeroDivisionError", "float division by zero")
			}
			return FloatV(af / bf), nil
		case pylang.DoubleSlash:
			if bf == 0 {
				return nil, in.NewExc("ZeroDivisionError", "float floor division by zero")
			}
			return FloatV(math.Floor(af / bf)), nil
		case pylang.Percent:
			if bf == 0 {
				return nil, in.NewExc("ZeroDivisionError", "float modulo")
			}
			m := math.Mod(af, bf)
			if m != 0 && (m < 0) != (bf < 0) {
				m += bf
			}
			return FloatV(m), nil
		case pylang.DoubleStar:
			return FloatV(math.Pow(af, bf)), nil
		}
	}
	return nil, in.NewExc("TypeError", "unsupported operand type(s) for %s: '%s' and '%s'",
		op, a.TypeName(), b.TypeName())
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func pyMod(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

func intPow(base, exp int64) int64 {
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

// formatPercent implements a practical subset of %-formatting: %s %d %f
// %.Nf %r %%.
func (in *Interp) formatPercent(format StrV, arg Value) (Value, *PyErr) {
	var args []Value
	if t, ok := arg.(*TupleV); ok {
		args = t.Elems
	} else {
		args = []Value{arg}
	}
	var sb strings.Builder
	src := string(format)
	ai := 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		if i+1 < len(src) && src[i+1] == '%' {
			sb.WriteByte('%')
			i++
			continue
		}
		// Parse an optional precision like %.3f.
		j := i + 1
		prec := -1
		if j < len(src) && src[j] == '.' {
			j++
			p := 0
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				p = p*10 + int(src[j]-'0')
				j++
			}
			prec = p
		}
		if j >= len(src) {
			return nil, in.NewExc("ValueError", "incomplete format")
		}
		if ai >= len(args) {
			return nil, in.NewExc("TypeError", "not enough arguments for format string")
		}
		a := args[ai]
		ai++
		switch src[j] {
		case 's':
			sb.WriteString(Str(a))
		case 'r':
			sb.WriteString(Repr(a))
		case 'd':
			iv, ok := asInt(a)
			if !ok {
				if f, fok := a.(FloatV); fok {
					iv = int64(f)
				} else {
					return nil, in.NewExc("TypeError", "%%d format: a number is required")
				}
			}
			fmt.Fprintf(&sb, "%d", iv)
		case 'f':
			fv, ok := asFloat(a)
			if !ok {
				return nil, in.NewExc("TypeError", "float argument required")
			}
			if prec < 0 {
				prec = 6
			}
			fmt.Fprintf(&sb, "%.*f", prec, fv)
		default:
			return nil, in.NewExc("ValueError", "unsupported format character %q", src[j])
		}
		i = j
	}
	return StrV(sb.String()), nil
}

func (in *Interp) unary(op pylang.Kind, v Value, pos pylang.Pos) (Value, *PyErr) {
	switch op {
	case pylang.KwNot:
		return BoolV(!Truth(v)), nil
	case pylang.Minus:
		switch t := v.(type) {
		case IntV:
			return -t, nil
		case FloatV:
			return -t, nil
		case BoolV:
			return IntV(-boolToInt(bool(t))), nil
		}
		return nil, in.NewExc("TypeError", "bad operand type for unary -: '%s'", v.TypeName())
	case pylang.Plus:
		switch v.(type) {
		case IntV, FloatV:
			return v, nil
		}
		return nil, in.NewExc("TypeError", "bad operand type for unary +: '%s'", v.TypeName())
	}
	return nil, in.NewExc("RuntimeError", "unknown unary op %s", op)
}

func (in *Interp) compare(fr *frame, v *pylang.Compare) (Value, *PyErr) {
	left, err := in.eval(fr, v.Left)
	if err != nil {
		return nil, err
	}
	for i, op := range v.Ops {
		right, err := in.eval(fr, v.Comparators[i])
		if err != nil {
			return nil, err
		}
		ok, perr := in.compareOne(op, left, right, v.Pos)
		if perr != nil {
			return nil, perr
		}
		if !ok {
			return BoolV(false), nil
		}
		left = right
	}
	return BoolV(true), nil
}

func (in *Interp) compareOne(op pylang.Kind, a, b Value, pos pylang.Pos) (bool, *PyErr) {
	switch op {
	case pylang.Eq:
		return Equal(a, b), nil
	case pylang.Ne:
		return !Equal(a, b), nil
	case pylang.KwIs:
		return identical(a, b), nil
	case pylang.KwIsNot:
		return !identical(a, b), nil
	case pylang.KwIn, pylang.KwNotIn:
		found, err := in.contains(b, a, pos)
		if err != nil {
			return false, err
		}
		if op == pylang.KwNotIn {
			return !found, nil
		}
		return found, nil
	}
	// Ordering.
	if af, aok := asFloat(a); aok {
		if bf, bok := asFloat(b); bok {
			switch op {
			case pylang.Lt:
				return af < bf, nil
			case pylang.Gt:
				return af > bf, nil
			case pylang.Le:
				return af <= bf, nil
			case pylang.Ge:
				return af >= bf, nil
			}
		}
	}
	if as, aok := a.(StrV); aok {
		if bs, bok := b.(StrV); bok {
			switch op {
			case pylang.Lt:
				return as < bs, nil
			case pylang.Gt:
				return as > bs, nil
			case pylang.Le:
				return as <= bs, nil
			case pylang.Ge:
				return as >= bs, nil
			}
		}
	}
	if al, aok := a.(*ListV); aok {
		if bl, bok := b.(*ListV); bok {
			return in.compareSeq(op, al.Elems, bl.Elems, pos)
		}
	}
	if at, aok := a.(*TupleV); aok {
		if bt, bok := b.(*TupleV); bok {
			return in.compareSeq(op, at.Elems, bt.Elems, pos)
		}
	}
	return false, in.NewExc("TypeError", "'%s' not supported between instances of '%s' and '%s'",
		op, a.TypeName(), b.TypeName())
}

func (in *Interp) compareSeq(op pylang.Kind, a, b []Value, pos pylang.Pos) (bool, *PyErr) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if Equal(a[i], b[i]) {
			continue
		}
		return in.compareOne(op, a[i], b[i], pos)
	}
	switch op {
	case pylang.Lt:
		return len(a) < len(b), nil
	case pylang.Gt:
		return len(a) > len(b), nil
	case pylang.Le:
		return len(a) <= len(b), nil
	case pylang.Ge:
		return len(a) >= len(b), nil
	}
	return false, nil
}

func identical(a, b Value) bool {
	switch a.(type) {
	case NoneV:
		_, ok := b.(NoneV)
		return ok
	case BoolV, IntV, FloatV, StrV:
		return Equal(a, b) && a.TypeName() == b.TypeName()
	}
	return a == b
}

func (in *Interp) contains(container, item Value, pos pylang.Pos) (bool, *PyErr) {
	switch c := container.(type) {
	case *ListV:
		for _, e := range c.Elems {
			if Equal(e, item) {
				return true, nil
			}
		}
		return false, nil
	case *TupleV:
		for _, e := range c.Elems {
			if Equal(e, item) {
				return true, nil
			}
		}
		return false, nil
	case *DictV:
		_, ok := c.Get(item)
		return ok, nil
	case StrV:
		s, ok := item.(StrV)
		if !ok {
			return false, in.NewExc("TypeError", "'in <string>' requires string as left operand")
		}
		return strings.Contains(string(c), string(s)), nil
	case *RangeV:
		iv, ok := asInt(item)
		if !ok {
			return false, nil
		}
		if c.Step > 0 {
			return iv >= c.Start && iv < c.Stop && (iv-c.Start)%c.Step == 0, nil
		}
		return iv <= c.Start && iv > c.Stop && (c.Start-iv)%(-c.Step) == 0, nil
	}
	return false, in.NewExc("TypeError", "argument of type '%s' is not iterable", container.TypeName())
}
