package pyruntime

// The compiled engine (EngineCompiled, the default) lowers statements and
// expressions once into flat streams of pre-resolved Go closures and executes
// those on subsequent runs, instead of re-dispatching on AST node types every
// time. Compilation is structural only — it resolves node kinds, pre-boxes
// literal constants, assigns local-variable slots, and pre-compiles jump
// structure — never semantic: every operation either inlines the exact
// behavior of the walker code path or calls straight into it (binop, getAttr,
// iterate, execStmtInner, ...). The byte-identity contract is that the two
// engines are indistinguishable through every simulated observable: virtual
// clock, fuel, simulated allocator, stdout, remote journal, error class,
// message, position and cause chain, and namespace insertion order. The
// differential fuzzer (FuzzCompileEval) and the corpus-level engine tests
// enforce the contract; DESIGN.md §12 documents it.
//
// Three allocation optimizations ride on the compiled engine, all invisible
// to simulated observables because the simulated allocator is only charged by
// explicit Alloc calls and `is` compares scalars by value:
//
//   - interning: small ints and single ASCII-rune strings are boxed once,
//     process-wide, and literal constants are boxed at compile time;
//   - arenas: call frames and local-slot vectors are bump-allocated per
//     interpreter and released LIFO on return (the frame arena is never
//     reallocated — frames hand out interior pointers);
//   - slot frames: functions whose locals are statically known skip the
//     per-call Env map entirely and index a slot vector instead.

import (
	"reflect"
	"sync"
	"time"

	"repro/internal/pylang"
)

// cStmt is one compiled statement. The statement's clock/fuel charge is taken
// by the runner (runCStmts) before invocation, mirroring execStmts/execStmt.
type cStmt func(in *Interp, fr *frame) (ctrl, *PyErr)

// cExpr is one compiled expression.
type cExpr func(in *Interp, fr *frame) (Value, *PyErr)

// cAssign stores a value through one compiled assignment target.
type cAssign func(in *Interp, fr *frame, v Value) *PyErr

// maxSlots bounds slot-frame size; larger functions use the generic path.
const maxSlots = 64

// funcCode is the lazily compiled body of one def/lambda node. One holder is
// shared (via ASTCache.funcHolder) by every FuncV created from that node, in
// every interpreter using the cache — Delta Debugging rewrites preserve def
// statement identity, so all candidates share one compilation.
type funcCode struct {
	once sync.Once
	def  *pylang.DefStmt
	lam  *pylang.LambdaExpr

	// Populated by compile():
	slotMode   bool
	useWalker  bool // pathological signatures (duplicate params) keep the walker call path
	slotOf     map[string]int
	nslots     int
	paramSlots []int          // param index -> slot (slotMode only)
	paramIdx   map[string]int // param name -> param index
	body       []cStmt
	expr       cExpr // lambda body
}

func (fc *funcCode) ensure(cache *ASTCache) { fc.once.Do(func() { fc.compile(cache) }) }

func (fc *funcCode) compile(cache *ASTCache) {
	var params []pylang.Param
	var body []pylang.Stmt
	var expr pylang.Expr
	if fc.def != nil {
		params, body = fc.def.Params, fc.def.Body
	} else {
		params, expr = fc.lam.Params, fc.lam.Body
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			// Duplicate parameter names make index-based binding diverge from
			// the walker's name-keyed binding; keep walker semantics verbatim.
			fc.useWalker = true
			return
		}
		seen[p.Name] = true
	}
	comp := &compiler{cache: cache}
	if slots, ok := analyzeSlots(params, body, expr); ok {
		fc.slotMode = true
		fc.slotOf = slots
		fc.nslots = len(slots)
		comp.slotOf = slots
	}
	fc.paramSlots = make([]int, len(params))
	fc.paramIdx = make(map[string]int, len(params))
	for i, p := range params {
		fc.paramIdx[p.Name] = i
		if fc.slotMode {
			fc.paramSlots[i] = fc.slotOf[p.Name]
		}
	}
	if expr != nil {
		fc.expr = comp.expr(expr)
	} else {
		fc.body = comp.stmts(body)
	}
}

// ---------------------------------------------------------------------------
// Slot analysis
// ---------------------------------------------------------------------------

// analyzeSlots decides whether a function body can run on a slot frame and
// collects its local names. Slot frames drop the per-call Env map; a frame's
// env then points at the *defining* environment, so eligibility requires that
// (a) every name the body can bind is statically known, and (b) no construct
// needs the function's own Env object (closures capturing it, global
// declarations, name deletion, star imports).
func analyzeSlots(params []pylang.Param, body []pylang.Stmt, expr pylang.Expr) (map[string]int, bool) {
	a := &slotAnalysis{names: make(map[string]int)}
	for _, p := range params {
		a.add(p.Name)
	}
	if expr != nil { // lambda: params are the only locals
		if !a.scanExpr(expr) || len(a.names) > maxSlots {
			return nil, false
		}
		return a.names, true
	}
	for _, s := range body {
		if !a.scan(s) {
			return nil, false
		}
	}
	if len(a.names) > maxSlots {
		return nil, false
	}
	return a.names, true
}

type slotAnalysis struct {
	names map[string]int
}

func (a *slotAnalysis) add(name string) {
	if _, ok := a.names[name]; !ok {
		a.names[name] = len(a.names)
	}
}

// scanExpr checks that an expression subtree contains no lambda (a lambda
// would capture fr.env, which is the defining scope on slot frames, not the
// call's locals).
func (a *slotAnalysis) scanExpr(e pylang.Expr) bool {
	ok := true
	pylang.Walk(e, func(n pylang.Node) bool {
		if _, isLam := n.(*pylang.LambdaExpr); isLam {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func (a *slotAnalysis) scanAll(body []pylang.Stmt) bool {
	for _, s := range body {
		if !a.scan(s) {
			return false
		}
	}
	return true
}

// scan collects bound names from one statement; unknown or disqualifying
// statement forms return false (the conservative default keeps any future
// bind site from bypassing slot collection).
func (a *slotAnalysis) scan(s pylang.Stmt) bool {
	switch v := s.(type) {
	case *pylang.PassStmt, *pylang.BreakStmt, *pylang.ContinueStmt:
		return true
	case *pylang.ExprStmt:
		return a.scanExpr(v.Value)
	case *pylang.AssignStmt:
		for _, t := range v.Targets {
			if !a.target(t) {
				return false
			}
		}
		return a.scanExpr(v.Value)
	case *pylang.AugAssignStmt:
		return a.target(v.Target) && a.scanExpr(v.Value)
	case *pylang.ReturnStmt:
		return v.Value == nil || a.scanExpr(v.Value)
	case *pylang.IfStmt:
		return a.scanExpr(v.Cond) && a.scanAll(v.Body) && a.scanAll(v.Else)
	case *pylang.WhileStmt:
		return a.scanExpr(v.Cond) && a.scanAll(v.Body) && a.scanAll(v.Else)
	case *pylang.ForStmt:
		return a.target(v.Target) && a.scanExpr(v.Iter) && a.scanAll(v.Body) && a.scanAll(v.Else)
	case *pylang.ImportStmt:
		for _, al := range v.Names {
			a.add(al.Bound())
		}
		return true
	case *pylang.FromImportStmt:
		if v.Star {
			return false // binds an unknowable name set
		}
		for _, al := range v.Names {
			a.add(al.Bound())
		}
		return true
	case *pylang.RaiseStmt:
		return v.Value == nil || a.scanExpr(v.Value)
	case *pylang.TryStmt:
		if !a.scanAll(v.Body) {
			return false
		}
		for _, ex := range v.Excepts {
			if ex.Type != nil && !a.scanExpr(ex.Type) {
				return false
			}
			if ex.Name != "" {
				a.add(ex.Name)
			}
			if !a.scanAll(ex.Body) {
				return false
			}
		}
		return a.scanAll(v.Else) && a.scanAll(v.Finally)
	case *pylang.AssertStmt:
		return a.scanExpr(v.Cond) && (v.Msg == nil || a.scanExpr(v.Msg))
	}
	// DefStmt (nested closures capture fr.env), ClassStmt, GlobalStmt,
	// DelStmt (unbinds a name — slots cannot express "deleted"), unknown.
	return false
}

func (a *slotAnalysis) target(t pylang.Expr) bool {
	switch v := t.(type) {
	case *pylang.NameExpr:
		a.add(v.Name)
		return true
	case *pylang.AttrExpr:
		return a.scanExpr(v.Value)
	case *pylang.IndexExpr:
		return a.scanExpr(v)
	case *pylang.TupleExpr:
		for _, e := range v.Elems {
			if !a.target(e) {
				return false
			}
		}
		return true
	case *pylang.ListExpr:
		for _, e := range v.Elems {
			if !a.target(e) {
				return false
			}
		}
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Interning
// ---------------------------------------------------------------------------

const (
	smallIntMin = -256
	smallIntMax = 1025
)

// smallInts and asciiStrs are process-wide interned boxes. Handing out a
// shared box instead of re-boxing is observationally invisible: `is` compares
// scalars by value (identical() in interp.go) and the simulated allocator is
// only charged by explicit Alloc calls.
var (
	smallInts [smallIntMax - smallIntMin]Value
	asciiStrs [128]Value
	valTrue   Value = BoolV(true)
	valFalse  Value = BoolV(false)
	valNone   Value = None
	zeroSlots       = []Value{} // non-nil: marks a slot frame with no locals
)

func init() {
	for i := range smallInts {
		smallInts[i] = IntV(int64(i) + smallIntMin)
	}
	for i := range asciiStrs {
		asciiStrs[i] = StrV(string(rune(i)))
	}
}

func internInt(v int64) Value {
	if v >= smallIntMin && v < smallIntMax {
		return smallInts[v-smallIntMin]
	}
	return IntV(v)
}

func internRune(r rune) Value {
	if r >= 0 && r < 128 {
		return asciiStrs[r]
	}
	return StrV(string(r))
}

func boolVal(b bool) Value {
	if b {
		return valTrue
	}
	return valFalse
}

// ---------------------------------------------------------------------------
// Arenas
// ---------------------------------------------------------------------------

const (
	// Initial chunk sizes; each further chunk doubles. Most interpreters
	// (one oracle run) stay within the first chunk of each arena; deeply
	// recursive programs grow toward MaxDepth across a handful of chunks.
	// Chunks are never reallocated — allocFrame hands out interior
	// pointers, so growth must append chunks, not resize them.
	frameChunkSize = 32
	slotChunkSize  = 256
	maxChunkShift  = 8 // cap chunk growth at initial<<8
)

// arenaMark snapshots both arena positions for LIFO release.
type arenaMark struct {
	fc, fp, sc, sp int
}

func (in *Interp) arenaMark() arenaMark {
	return arenaMark{fc: in.frameChunk, fp: in.framePos, sc: in.slotChunk, sp: in.slotPos}
}

// releaseTo pops every arena allocation made since mark (defers unwind it
// correctly past fatal-error panics).
func (in *Interp) releaseTo(m arenaMark) {
	in.frameChunk, in.framePos = m.fc, m.fp
	in.slotChunk, in.slotPos = m.sc, m.sp
}

func chunkSize(base, idx, n int) int {
	shift := idx
	if shift > maxChunkShift {
		shift = maxChunkShift
	}
	size := base << shift
	if size < n {
		size = n
	}
	return size
}

func (in *Interp) allocFrame() *frame {
	for {
		if in.frameChunk < len(in.frameChunks) {
			c := in.frameChunks[in.frameChunk]
			if in.framePos < len(c) {
				fr := &c[in.framePos]
				in.framePos++
				return fr
			}
			in.frameChunk++
			in.framePos = 0
			continue
		}
		in.frameChunks = append(in.frameChunks, make([]frame, chunkSize(frameChunkSize, len(in.frameChunks), 1)))
	}
}

func (in *Interp) allocSlots(n int) []Value {
	if n == 0 {
		return zeroSlots
	}
	for {
		if in.slotChunk < len(in.slotChunks) {
			c := in.slotChunks[in.slotChunk]
			if in.slotPos+n <= len(c) {
				s := c[in.slotPos : in.slotPos+n : in.slotPos+n]
				in.slotPos += n
				for i := range s {
					s[i] = nil
				}
				return s
			}
			// The current chunk's tail is too small: move on (the waste is
			// reclaimed when the mark is released).
			in.slotChunk++
			in.slotPos = 0
			continue
		}
		in.slotChunks = append(in.slotChunks, make([]Value, chunkSize(slotChunkSize, len(in.slotChunks), n)))
	}
}

// ---------------------------------------------------------------------------
// Code caches
// ---------------------------------------------------------------------------

// Code-cache bounds. A Delta Debugging session compiles one candidate body
// per distinct attribute subset; the caps keep a long-lived shared cache from
// retaining an unbounded closure graph (which the GC would rescan every
// cycle). Resetting wholesale is observationally invisible — stable modules
// simply recompile once after a reset.
const (
	mcodeCap = 8192
	bcodeCap = 4096
)

// bodyCode is one deduplicated module-body compilation. pin retains the
// statement nodes whose addresses form the cache key: a key can only match a
// live body whose statements are these exact nodes, so pointer reuse after a
// GC can never alias two different bodies to one entry. code stays nil until
// the body warms up (second execution); walk marks bodies not worth
// compiling at all.
type bodyCode struct {
	pin  []pylang.Stmt
	code []cStmt
	walk bool
}

// bodyComputes reports whether a module body contains any loop outside
// nested function bodies. Definition-only bodies (def/class/import/assign
// sequences — the dominant shape of library modules) execute each statement
// exactly once through semantics shared verbatim with the walker, so a
// compiled stream cannot beat walking them but its closure graph would sit
// on the heap for the GC to rescan; such bodies stay walked. Function bodies
// defined inside them still compile through their own cache on first call.
func bodyComputes(body []pylang.Stmt) bool {
	for _, s := range body {
		switch v := s.(type) {
		case *pylang.ForStmt, *pylang.WhileStmt:
			return true
		case *pylang.IfStmt:
			if bodyComputes(v.Body) || bodyComputes(v.Else) {
				return true
			}
		case *pylang.TryStmt:
			if bodyComputes(v.Body) || bodyComputes(v.Else) || bodyComputes(v.Finally) {
				return true
			}
			for _, ex := range v.Excepts {
				if bodyComputes(ex.Body) {
					return true
				}
			}
		}
	}
	return false
}

// bodyKey renders a statement sequence's node identities as a map key. Two
// bodies with the same key execute identical code: compilation is a pure
// function of the statement nodes, and DD rewrites filter the original
// statement list without cloning nodes.
func bodyKey(body []pylang.Stmt) string {
	b := make([]byte, 0, len(body)*8)
	for _, s := range body {
		p := reflect.ValueOf(s).Pointer()
		b = append(b, byte(p), byte(p>>8), byte(p>>16), byte(p>>24),
			byte(p>>32), byte(p>>40), byte(p>>48), byte(p>>56))
	}
	return string(b)
}

// moduleCode returns the compiled form of a module body, or nil to tell the
// caller to walk it this time. Stable module nodes (parse-cache parses,
// accepted debloater overrides) hit the node-keyed fast path; everything else
// deduplicates through the body-identity cache. Import-owned bodies (mod
// non-nil) warm up JIT-style: the first execution of a never-seen body is
// walked and only a second execution compiles, so the fresh one-shot
// candidate module a DD oracle run constructs per test never pays
// compilation, while the stable modules every oracle run re-imports compile
// once and run compiled forever after. Walking and running compiled are
// observationally identical (the byte-identity contract), so the mix is
// invisible to every simulated observable.
func (c *ASTCache) moduleCode(mod *pylang.Module, body []pylang.Stmt) []cStmt {
	if mod != nil {
		c.codeMu.RLock()
		code, ok := c.mcode[mod]
		c.codeMu.RUnlock()
		if ok {
			return code
		}
	}
	key := bodyKey(body)
	c.codeMu.Lock()
	bc := c.bcode[key]
	if bc == nil {
		if len(c.bcode) >= bcodeCap {
			c.bcode = make(map[string]*bodyCode)
			c.mcode = make(map[*pylang.Module][]cStmt)
		}
		bc = &bodyCode{pin: body}
		c.bcode[key] = bc
		if mod != nil {
			c.codeMu.Unlock()
			return nil // first sighting: walk it
		}
	}
	code := bc.code
	walkOnly := bc.walk
	c.codeMu.Unlock()
	if walkOnly && mod != nil {
		return nil
	}
	if code == nil {
		if mod != nil && !bodyComputes(body) {
			c.codeMu.Lock()
			bc.walk = true
			c.codeMu.Unlock()
			return nil
		}
		code = (&compiler{cache: c}).stmts(body)
		c.codeMu.Lock()
		if bc.code == nil {
			bc.code = code
		} else {
			code = bc.code // lost a compile race; share the winner
		}
		c.codeMu.Unlock()
	}
	if mod != nil {
		c.codeMu.Lock()
		if len(c.mcode) >= mcodeCap {
			c.mcode = make(map[*pylang.Module][]cStmt)
		}
		c.mcode[mod] = code
		c.codeMu.Unlock()
	}
	return code
}

// funcHolder returns the shared code holder for a def/lambda node.
func (c *ASTCache) funcHolder(node pylang.Node) *funcCode {
	c.codeMu.RLock()
	fc, ok := c.fcode[node]
	c.codeMu.RUnlock()
	if ok {
		return fc
	}
	fc = &funcCode{}
	switch v := node.(type) {
	case *pylang.DefStmt:
		fc.def = v
	case *pylang.LambdaExpr:
		fc.lam = v
	default:
		return nil
	}
	c.codeMu.Lock()
	if prev, ok := c.fcode[node]; ok {
		fc = prev
	} else {
		c.fcode[node] = fc
	}
	c.codeMu.Unlock()
	return fc
}

// attachCode equips a freshly created FuncV with the node its shared code
// holder resolves from on first call (callFunc): definitions are much more
// common than calls during imports, so definition does no cache work at all.
// Only the compiled engine attaches; the walker stays a pure reference
// implementation (and ignores stray code/node fields from mixed-engine
// values).
func (in *Interp) attachCode(fn *FuncV, node pylang.Node) {
	if in.engine != EngineCompiled {
		return
	}
	fn.node = node
}

// ---------------------------------------------------------------------------
// Runner and calls
// ---------------------------------------------------------------------------

// runCStmts drives a compiled statement stream, mirroring execStmts/execStmt:
// one clock/fuel charge per statement, errors unwind with ctrlNormal.
func (in *Interp) runCStmts(fr *frame, body []cStmt) (ctrl, *PyErr) {
	for _, s := range body {
		in.chargeStmt()
		c, err := s(in, fr)
		if err != nil {
			return ctrlNormal, err
		}
		if c.kind != ctrlNone {
			return c, nil
		}
	}
	return ctrlNormal, nil
}

// callCompiled invokes a function through its compiled body. Callers must
// have run fc.ensure and checked !fc.useWalker.
func (in *Interp) callCompiled(f *FuncV, fc *funcCode, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if fc.slotMode {
		return in.callSlot(f, fc, args, kwargs)
	}
	return in.callGeneric(f, fc, args, kwargs)
}

func (in *Interp) callSlot(f *FuncV, fc *funcCode, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) > len(f.Params) {
		return nil, in.NewExc("TypeError", "%s() takes %d arguments but %d were given",
			f.Name, len(f.Params), len(args))
	}
	mark := in.arenaMark()
	defer in.releaseTo(mark)
	fr := in.allocFrame()
	slots := in.allocSlots(fc.nslots)
	fr.globals, fr.env, fr.module = f.Globals, f.Env, f.Module
	fr.slots, fr.fcode = slots, fc
	for i, a := range args {
		slots[fc.paramSlots[i]] = a
	}
	if len(kwargs) == 1 {
		// A single key needs no sort allocation; the binding order of one
		// element is trivially deterministic.
		for name, val := range kwargs {
			pi, ok := fc.paramIdx[name]
			if !ok {
				return nil, in.NewExc("TypeError", "%s() got an unexpected keyword argument '%s'", f.Name, name)
			}
			si := fc.paramSlots[pi]
			if slots[si] != nil {
				return nil, in.NewExc("TypeError", "%s() got multiple values for argument '%s'", f.Name, name)
			}
			slots[si] = val
		}
	} else if len(kwargs) > 1 {
		for _, name := range sortedKwargKeys(kwargs) {
			pi, ok := fc.paramIdx[name]
			if !ok {
				return nil, in.NewExc("TypeError", "%s() got an unexpected keyword argument '%s'", f.Name, name)
			}
			si := fc.paramSlots[pi]
			if slots[si] != nil {
				return nil, in.NewExc("TypeError", "%s() got multiple values for argument '%s'", f.Name, name)
			}
			slots[si] = kwargs[name]
		}
	}
	for i := range f.Params {
		si := fc.paramSlots[i]
		if slots[si] != nil {
			continue
		}
		if i >= len(f.Defaults) || f.Defaults[i] == nil {
			return nil, in.NewExc("TypeError", "%s() missing required argument: '%s'", f.Name, f.Params[i].Name)
		}
		slots[si] = f.Defaults[i]
	}
	if f.Cost > 0 {
		in.Clock.Advance(time.Duration(f.Cost))
	}
	if fc.expr != nil {
		return fc.expr(in, fr)
	}
	c, err := in.runCStmts(fr, fc.body)
	if err != nil {
		return nil, err
	}
	if c.kind == ctrlReturn {
		return c.value, nil
	}
	return None, nil
}

func (in *Interp) callGeneric(f *FuncV, fc *funcCode, args []Value, kwargs map[string]Value) (Value, *PyErr) {
	if len(args) > len(f.Params) {
		return nil, in.NewExc("TypeError", "%s() takes %d arguments but %d were given",
			f.Name, len(f.Params), len(args))
	}
	env := NewEnv(f.Env)
	var boundArr [32]bool
	var bound []bool
	if len(f.Params) <= len(boundArr) {
		bound = boundArr[:len(f.Params)]
	} else {
		bound = make([]bool, len(f.Params))
	}
	for i, a := range args {
		env.vars[f.Params[i].Name] = a
		bound[i] = true
	}
	if len(kwargs) == 1 {
		for name, val := range kwargs {
			pi, ok := fc.paramIdx[name]
			if !ok {
				return nil, in.NewExc("TypeError", "%s() got an unexpected keyword argument '%s'", f.Name, name)
			}
			if bound[pi] {
				return nil, in.NewExc("TypeError", "%s() got multiple values for argument '%s'", f.Name, name)
			}
			env.vars[name] = val
			bound[pi] = true
		}
	} else if len(kwargs) > 1 {
		for _, name := range sortedKwargKeys(kwargs) {
			pi, ok := fc.paramIdx[name]
			if !ok {
				return nil, in.NewExc("TypeError", "%s() got an unexpected keyword argument '%s'", f.Name, name)
			}
			if bound[pi] {
				return nil, in.NewExc("TypeError", "%s() got multiple values for argument '%s'", f.Name, name)
			}
			env.vars[name] = kwargs[name]
			bound[pi] = true
		}
	}
	for i, p := range f.Params {
		if bound[i] {
			continue
		}
		if i >= len(f.Defaults) || f.Defaults[i] == nil {
			return nil, in.NewExc("TypeError", "%s() missing required argument: '%s'", f.Name, p.Name)
		}
		env.vars[p.Name] = f.Defaults[i]
	}
	mark := in.arenaMark()
	defer in.releaseTo(mark)
	fr := in.allocFrame()
	fr.globals, fr.env, fr.module = f.Globals, env, f.Module
	fr.slots, fr.fcode = nil, nil
	if f.Cost > 0 {
		in.Clock.Advance(time.Duration(f.Cost))
	}
	if fc.expr != nil {
		return fc.expr(in, fr)
	}
	c, err := in.runCStmts(fr, fc.body)
	if err != nil {
		return nil, err
	}
	if c.kind == ctrlReturn {
		return c.value, nil
	}
	return None, nil
}

// ---------------------------------------------------------------------------
// Statement compilation
// ---------------------------------------------------------------------------

// compiler lowers one lexical scope. slotOf is non-nil when compiling a
// slot-mode function body; cache provides holders for nested defs/lambdas.
type compiler struct {
	cache  *ASTCache
	slotOf map[string]int
}

var (
	cPass cStmt = func(in *Interp, fr *frame) (ctrl, *PyErr) { return ctrlNormal, nil }
	cBrk  cStmt = func(in *Interp, fr *frame) (ctrl, *PyErr) { return ctrl{kind: ctrlBreak}, nil }
	cCont cStmt = func(in *Interp, fr *frame) (ctrl, *PyErr) { return ctrl{kind: ctrlContinue}, nil }
)

func (c *compiler) stmts(body []pylang.Stmt) []cStmt {
	if len(body) == 0 {
		return nil
	}
	out := make([]cStmt, len(body))
	for i, s := range body {
		out[i] = c.stmt(s)
	}
	return out
}

// fallback delegates a statement to the walker's per-statement implementation
// (after the runner's charge). Used for rare constructs whose semantics are
// not worth duplicating; slot eligibility excludes the ones that would
// misbehave on a slot frame.
func (c *compiler) fallback(s pylang.Stmt) cStmt {
	return func(in *Interp, fr *frame) (ctrl, *PyErr) {
		return in.execStmtInner(fr, s)
	}
}

func (c *compiler) stmt(s pylang.Stmt) cStmt {
	switch v := s.(type) {
	case *pylang.PassStmt:
		return cPass
	case *pylang.BreakStmt:
		return cBrk
	case *pylang.ContinueStmt:
		return cCont
	case *pylang.ExprStmt:
		e := c.expr(v.Value)
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			_, err := e(in, fr)
			return ctrlNormal, err
		}
	case *pylang.AssignStmt:
		valC := c.expr(v.Value)
		if len(v.Targets) == 1 {
			asg := c.assign1(v.Targets[0])
			return func(in *Interp, fr *frame) (ctrl, *PyErr) {
				val, err := valC(in, fr)
				if err != nil {
					return ctrlNormal, err
				}
				return ctrlNormal, asg(in, fr, val)
			}
		}
		asgs := make([]cAssign, len(v.Targets))
		for i, t := range v.Targets {
			asgs[i] = c.assign1(t)
		}
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			val, err := valC(in, fr)
			if err != nil {
				return ctrlNormal, err
			}
			for _, asg := range asgs {
				if err := asg(in, fr, val); err != nil {
					return ctrlNormal, err
				}
			}
			return ctrlNormal, nil
		}
	case *pylang.AugAssignStmt:
		// Like the walker: load the target, evaluate the rhs, combine, store
		// back through the target (re-evaluating any object expressions).
		curC := c.expr(v.Target)
		valC := c.expr(v.Value)
		asg := c.assign1(v.Target)
		op, pos := v.Op, v.Pos
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			cur, err := curC(in, fr)
			if err != nil {
				return ctrlNormal, err
			}
			rhs, err := valC(in, fr)
			if err != nil {
				return ctrlNormal, err
			}
			res, err := in.binop(op, cur, rhs, pos)
			if err != nil {
				return ctrlNormal, err
			}
			return ctrlNormal, asg(in, fr, res)
		}
	case *pylang.ReturnStmt:
		if v.Value == nil {
			return func(in *Interp, fr *frame) (ctrl, *PyErr) {
				return ctrl{kind: ctrlReturn, value: valNone}, nil
			}
		}
		valC := c.expr(v.Value)
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			val, err := valC(in, fr)
			if err != nil {
				return ctrlNormal, err
			}
			return ctrl{kind: ctrlReturn, value: val}, nil
		}
	case *pylang.IfStmt:
		condC := c.expr(v.Cond)
		bodyC := c.stmts(v.Body)
		elseC := c.stmts(v.Else)
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			cond, err := condC(in, fr)
			if err != nil {
				return ctrlNormal, err
			}
			if Truth(cond) {
				return in.runCStmts(fr, bodyC)
			}
			return in.runCStmts(fr, elseC)
		}
	case *pylang.WhileStmt:
		condC := c.expr(v.Cond)
		bodyC := c.stmts(v.Body)
		elseC := c.stmts(v.Else)
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			for {
				cond, err := condC(in, fr)
				if err != nil {
					return ctrlNormal, err
				}
				if !Truth(cond) {
					break
				}
				cc, err := in.runCStmts(fr, bodyC)
				if err != nil {
					return ctrlNormal, err
				}
				if cc.kind == ctrlBreak {
					return ctrlNormal, nil
				}
				if cc.kind == ctrlReturn {
					return cc, nil
				}
				in.chargeStmt() // loop back-edge, as in the walker
			}
			return in.runCStmts(fr, elseC)
		}
	case *pylang.ForStmt:
		iterC := c.expr(v.Iter)
		asg := c.assign1(v.Target)
		bodyC := c.stmts(v.Body)
		elseC := c.stmts(v.Else)
		pos := v.Pos
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			iter, err := iterC(in, fr)
			if err != nil {
				return ctrlNormal, err
			}
			// Lazy fast paths avoid materializing ranges and strings; the
			// iteration count, element values and charge schedule are
			// identical to the walker's materialized loop.
			switch t := iter.(type) {
			case *RangeV:
				start, step := t.Start, t.Step
				return in.runForLoop(fr, t.Len(), func(i int64) Value { return internInt(start + i*step) }, asg, bodyC, elseC)
			case StrV:
				runes := []rune(string(t))
				return in.runForLoop(fr, int64(len(runes)), func(i int64) Value { return internRune(runes[i]) }, asg, bodyC, elseC)
			}
			elems, perr := in.iterate(iter, pos)
			if perr != nil {
				return ctrlNormal, perr
			}
			return in.runForLoop(fr, int64(len(elems)), func(i int64) Value { return elems[i] }, asg, bodyC, elseC)
		}
	case *pylang.RaiseStmt:
		if v.Value == nil {
			return func(in *Interp, fr *frame) (ctrl, *PyErr) {
				return ctrlNormal, in.NewExc("RuntimeError", "no active exception to re-raise")
			}
		}
		valC := c.expr(v.Value)
		pos := v.Pos
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			val, err := valC(in, fr)
			if err != nil {
				return ctrlNormal, err
			}
			return ctrlNormal, in.raiseValue(val, pos, fr.module)
		}
	case *pylang.TryStmt:
		return c.tryStmt(v)
	case *pylang.DefStmt:
		// Mirrors the walker's DefStmt case with the per-execution constant
		// work hoisted to compile time: the shared code holder, the default
		// expressions, and the decorator expressions.
		holder := c.cache.funcHolder(v)
		defIdx, defCs := c.defaults(v.Params)
		decCs := c.exprs(v.Decorators)
		nparams := len(v.Params)
		node := v
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			defaults, derr := runDefaults(in, fr, nparams, defIdx, defCs)
			if derr != nil {
				return ctrlNormal, derr
			}
			fn := &FuncV{
				Name: node.Name, Params: node.Params, Body: node.Body,
				Globals: fr.globals, Module: fr.module, Env: fr.env,
				Defaults: defaults, code: holder,
			}
			in.Alloc.Alloc(SizeOf(fn) + int64(60*len(node.Body)))
			var value Value = fn
			// Apply decorators innermost-first, as the walker does.
			for i := len(decCs) - 1; i >= 0; i-- {
				dec, err := decCs[i](in, fr)
				if err != nil {
					return ctrlNormal, err
				}
				value, err = in.call(dec, []Value{value}, nil, node.Pos)
				if err != nil {
					return ctrlNormal, err
				}
			}
			in.bind(fr, node.Name, value)
			return ctrlNormal, nil
		}
	case *pylang.ClassStmt:
		node := v
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			return ctrlNormal, in.execClass(fr, node)
		}
	case *pylang.ImportStmt:
		node := v
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			return in.execImport(fr, node)
		}
	case *pylang.FromImportStmt:
		node := v
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			return ctrlNormal, in.execFromImport(fr, node)
		}
	case *pylang.AssertStmt:
		condC := c.expr(v.Cond)
		var msgC cExpr
		if v.Msg != nil {
			msgC = c.expr(v.Msg)
		}
		return func(in *Interp, fr *frame) (ctrl, *PyErr) {
			cond, err := condC(in, fr)
			if err != nil {
				return ctrlNormal, err
			}
			if !Truth(cond) {
				msg := ""
				if msgC != nil {
					m, err := msgC(in, fr)
					if err != nil {
						return ctrlNormal, err
					}
					msg = Str(m)
				}
				return ctrlNormal, in.NewExc("AssertionError", "%s", msg)
			}
			return ctrlNormal, nil
		}
	}
	// GlobalStmt, DelStmt and unknown statements share the walker's
	// implementation via fallback.
	return c.fallback(s)
}

// runForLoop executes a compiled for-loop over n elements produced by at,
// following the walker's charge schedule (one back-edge charge after every
// non-breaking iteration) and else-clause semantics.
func (in *Interp) runForLoop(fr *frame, n int64, at func(int64) Value, asg cAssign, body, elseB []cStmt) (ctrl, *PyErr) {
	broke := false
	for i := int64(0); i < n; i++ {
		if err := asg(in, fr, at(i)); err != nil {
			return ctrlNormal, err
		}
		c, err := in.runCStmts(fr, body)
		if err != nil {
			return ctrlNormal, err
		}
		if c.kind == ctrlBreak {
			broke = true
			break
		}
		if c.kind == ctrlReturn {
			return c, nil
		}
		in.chargeStmt()
	}
	if !broke {
		return in.runCStmts(fr, elseB)
	}
	return ctrlNormal, nil
}

type cExcept struct {
	typeC cExpr // nil catches everything
	name  string
	body  []cStmt
}

func (c *compiler) tryStmt(v *pylang.TryStmt) cStmt {
	bodyC := c.stmts(v.Body)
	excepts := make([]cExcept, len(v.Excepts))
	for i, ex := range v.Excepts {
		var typeC cExpr
		if ex.Type != nil {
			typeC = c.expr(ex.Type)
		}
		excepts[i] = cExcept{typeC: typeC, name: ex.Name, body: c.stmts(ex.Body)}
	}
	elseC := c.stmts(v.Else)
	hasElse := len(v.Else) > 0
	finallyC := c.stmts(v.Finally)
	hasFinally := len(v.Finally) > 0
	return func(in *Interp, fr *frame) (ctrl, *PyErr) {
		cc, err := in.runCStmts(fr, bodyC)
		if err != nil {
			for i := range excepts {
				clause := &excepts[i]
				match := true
				if clause.typeC != nil {
					typeVal, terr := clause.typeC(in, fr)
					if terr != nil {
						err = terr
						break
					}
					var merr *PyErr
					match, merr = in.matchExcClasses(typeVal, err)
					if merr != nil {
						err = merr
						break
					}
				}
				if !match {
					continue
				}
				if clause.name != "" {
					in.bind(fr, clause.name, err.Value)
				}
				ctx := err
				cc, err = in.runCStmts(fr, clause.body)
				// Implicit chaining (CPython's __context__), as in the walker.
				chainCause(err, ctx)
				break
			}
		} else if cc.kind == ctrlNone && hasElse {
			cc, err = in.runCStmts(fr, elseC)
		}
		if hasFinally {
			fc, ferr := in.runCStmts(fr, finallyC)
			if ferr != nil {
				return ctrlNormal, ferr // finally's error supersedes
			}
			if fc.kind != ctrlNone {
				return fc, nil
			}
		}
		return cc, err
	}
}

// ---------------------------------------------------------------------------
// Assignment-target compilation
// ---------------------------------------------------------------------------

func (c *compiler) assign1(t pylang.Expr) cAssign {
	switch v := t.(type) {
	case *pylang.NameExpr:
		name := v.Name
		if c.slotOf != nil {
			if i, ok := c.slotOf[name]; ok {
				return func(in *Interp, fr *frame, val Value) *PyErr {
					fr.slots[i] = val
					return nil
				}
			}
		}
		return func(in *Interp, fr *frame, val Value) *PyErr {
			in.bind(fr, name, val)
			return nil
		}
	case *pylang.AttrExpr:
		objC := c.expr(v.Value)
		attr, pos := v.Attr, v.Pos
		return func(in *Interp, fr *frame, val Value) *PyErr {
			obj, err := objC(in, fr)
			if err != nil {
				return err
			}
			return in.setAttr(obj, attr, val, pos)
		}
	case *pylang.IndexExpr:
		objC := c.expr(v.Value)
		if v.Slice {
			return func(in *Interp, fr *frame, val Value) *PyErr {
				if _, err := objC(in, fr); err != nil {
					return err
				}
				return in.NewExc("TypeError", "slice assignment is not supported")
			}
		}
		idxC := c.expr(v.Index)
		pos := v.Pos
		return func(in *Interp, fr *frame, val Value) *PyErr {
			obj, err := objC(in, fr)
			if err != nil {
				return err
			}
			idx, err := idxC(in, fr)
			if err != nil {
				return err
			}
			return in.setItem(obj, idx, val, pos)
		}
	case *pylang.TupleExpr:
		return c.unpackAssign(v.Elems, v.Pos)
	case *pylang.ListExpr:
		return c.unpackAssign(v.Elems, v.Pos)
	}
	node := t
	return func(in *Interp, fr *frame, val Value) *PyErr {
		return in.NewExc("SyntaxError", "cannot assign to %T", node)
	}
}

func (c *compiler) unpackAssign(targets []pylang.Expr, pos pylang.Pos) cAssign {
	asgs := make([]cAssign, len(targets))
	for i, t := range targets {
		asgs[i] = c.assign1(t)
	}
	return func(in *Interp, fr *frame, val Value) *PyErr {
		elems, err := in.iterate(val, pos)
		if err != nil {
			return err
		}
		if len(elems) != len(asgs) {
			return in.NewExc("ValueError", "cannot unpack %d values into %d targets", len(elems), len(asgs))
		}
		for i, asg := range asgs {
			if err := asg(in, fr, elems[i]); err != nil {
				return err
			}
		}
		return nil
	}
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

func constExpr(v Value) cExpr {
	return func(*Interp, *frame) (Value, *PyErr) { return v, nil }
}

func (c *compiler) exprs(es []pylang.Expr) []cExpr {
	out := make([]cExpr, len(es))
	for i, e := range es {
		out[i] = c.expr(e)
	}
	return out
}

func (c *compiler) expr(e pylang.Expr) cExpr {
	switch v := e.(type) {
	case *pylang.NameExpr:
		name, pos := v.Name, v.Pos
		if c.slotOf != nil {
			if i, ok := c.slotOf[name]; ok {
				return func(in *Interp, fr *frame) (Value, *PyErr) {
					if val := fr.slots[i]; val != nil {
						return val, nil
					}
					// Unbound local: fall through the walker's full lookup
					// (defining env chain, globals, builtins, NameError).
					return in.lookup(fr, name, pos)
				}
			}
		}
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			return in.lookup(fr, name, pos)
		}
	case *pylang.IntLit:
		return constExpr(internInt(v.Value))
	case *pylang.FloatLit:
		return constExpr(FloatV(v.Value))
	case *pylang.StringLit:
		return constExpr(StrV(v.Value))
	case *pylang.BoolLit:
		return constExpr(boolVal(v.Value))
	case *pylang.NoneLit:
		return constExpr(valNone)
	case *pylang.AttrExpr:
		objC := c.expr(v.Value)
		attr, pos := v.Attr, v.Pos
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			obj, err := objC(in, fr)
			if err != nil {
				return nil, err
			}
			return in.getAttr(obj, attr, pos)
		}
	case *pylang.IndexExpr:
		objC := c.expr(v.Value)
		if v.Slice {
			node := v
			return func(in *Interp, fr *frame) (Value, *PyErr) {
				obj, err := objC(in, fr)
				if err != nil {
					return nil, err
				}
				return in.evalSlice(fr, obj, node)
			}
		}
		idxC := c.expr(v.Index)
		pos := v.Pos
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			obj, err := objC(in, fr)
			if err != nil {
				return nil, err
			}
			idx, err := idxC(in, fr)
			if err != nil {
				return nil, err
			}
			// In-bounds list[int] inline; everything else (including the
			// error cases) takes the walker's getItem.
			if l, ok := obj.(*ListV); ok {
				if iv, ok := idx.(IntV); ok {
					j := int(iv)
					if j < 0 {
						j += len(l.Elems)
					}
					if j >= 0 && j < len(l.Elems) {
						return l.Elems[j], nil
					}
				}
			}
			return in.getItem(obj, idx, pos)
		}
	case *pylang.CallExpr:
		fnC := c.expr(v.Func)
		argCs := c.exprs(v.Args)
		var kwNames []string
		var kwCs []cExpr
		if len(v.Keywords) > 0 {
			kwNames = make([]string, len(v.Keywords))
			kwCs = make([]cExpr, len(v.Keywords))
			for i, kw := range v.Keywords {
				kwNames[i] = kw.Name
				kwCs[i] = c.expr(kw.Value)
			}
		}
		pos := v.Pos
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			fn, err := fnC(in, fr)
			if err != nil {
				return nil, err
			}
			args := make([]Value, len(argCs))
			for i, ac := range argCs {
				val, err := ac(in, fr)
				if err != nil {
					return nil, err
				}
				args[i] = val
			}
			var kwargs map[string]Value
			if len(kwCs) > 0 {
				kwargs = make(map[string]Value, len(kwCs))
				for i, kc := range kwCs {
					val, err := kc(in, fr)
					if err != nil {
						return nil, err
					}
					kwargs[kwNames[i]] = val
				}
			}
			return in.call(fn, args, kwargs, pos)
		}
	case *pylang.BinOp:
		leftC := c.expr(v.Left)
		rightC := c.expr(v.Right)
		op, pos := v.Op, v.Pos
		switch op {
		case pylang.Plus, pylang.Minus, pylang.Star:
			// int ⊕ int inline with interning; all other operand kinds
			// (and overflow-free by int64 wraparound, same as the walker)
			// take the shared binop.
			return func(in *Interp, fr *frame) (Value, *PyErr) {
				l, err := leftC(in, fr)
				if err != nil {
					return nil, err
				}
				r, err := rightC(in, fr)
				if err != nil {
					return nil, err
				}
				if li, ok := l.(IntV); ok {
					if ri, ok := r.(IntV); ok {
						switch op {
						case pylang.Plus:
							return internInt(int64(li) + int64(ri)), nil
						case pylang.Minus:
							return internInt(int64(li) - int64(ri)), nil
						default:
							return internInt(int64(li) * int64(ri)), nil
						}
					}
				}
				return in.binop(op, l, r, pos)
			}
		}
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			l, err := leftC(in, fr)
			if err != nil {
				return nil, err
			}
			r, err := rightC(in, fr)
			if err != nil {
				return nil, err
			}
			return in.binop(op, l, r, pos)
		}
	case *pylang.BoolOp:
		valCs := c.exprs(v.Values)
		isAnd := v.Op == pylang.KwAnd
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			var last Value = valNone
			for _, vc := range valCs {
				val, err := vc(in, fr)
				if err != nil {
					return nil, err
				}
				last = val
				if isAnd && !Truth(val) {
					return val, nil
				}
				if !isAnd && Truth(val) {
					return val, nil
				}
			}
			return last, nil
		}
	case *pylang.UnaryOp:
		operC := c.expr(v.Operand)
		op, pos := v.Op, v.Pos
		if op == pylang.KwNot {
			return func(in *Interp, fr *frame) (Value, *PyErr) {
				val, err := operC(in, fr)
				if err != nil {
					return nil, err
				}
				return boolVal(!Truth(val)), nil
			}
		}
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			val, err := operC(in, fr)
			if err != nil {
				return nil, err
			}
			if op == pylang.Minus {
				if iv, ok := val.(IntV); ok {
					return internInt(-int64(iv)), nil
				}
			}
			return in.unary(op, val, pos)
		}
	case *pylang.Compare:
		leftC := c.expr(v.Left)
		compCs := c.exprs(v.Comparators)
		ops := v.Ops
		pos := v.Pos
		if len(ops) == 1 {
			op := ops[0]
			rightC := compCs[0]
			switch op {
			case pylang.Lt, pylang.Gt, pylang.Le, pylang.Ge, pylang.Eq, pylang.Ne:
				return func(in *Interp, fr *frame) (Value, *PyErr) {
					l, err := leftC(in, fr)
					if err != nil {
						return nil, err
					}
					r, err := rightC(in, fr)
					if err != nil {
						return nil, err
					}
					if li, ok := l.(IntV); ok {
						if ri, ok := r.(IntV); ok {
							var b bool
							switch op {
							case pylang.Lt:
								b = li < ri
							case pylang.Gt:
								b = li > ri
							case pylang.Le:
								b = li <= ri
							case pylang.Ge:
								b = li >= ri
							case pylang.Eq:
								b = li == ri
							default:
								b = li != ri
							}
							return boolVal(b), nil
						}
					}
					ok, perr := in.compareOne(op, l, r, pos)
					if perr != nil {
						return nil, perr
					}
					return boolVal(ok), nil
				}
			}
		}
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			left, err := leftC(in, fr)
			if err != nil {
				return nil, err
			}
			for i, op := range ops {
				right, err := compCs[i](in, fr)
				if err != nil {
					return nil, err
				}
				ok, perr := in.compareOne(op, left, right, pos)
				if perr != nil {
					return nil, perr
				}
				if !ok {
					return valFalse, nil
				}
				left = right
			}
			return valTrue, nil
		}
	case *pylang.ListExpr:
		elemCs := c.exprs(v.Elems)
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			elems := make([]Value, len(elemCs))
			for i, ec := range elemCs {
				val, err := ec(in, fr)
				if err != nil {
					return nil, err
				}
				elems[i] = val
			}
			return &ListV{Elems: elems}, nil
		}
	case *pylang.TupleExpr:
		elemCs := c.exprs(v.Elems)
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			elems := make([]Value, len(elemCs))
			for i, ec := range elemCs {
				val, err := ec(in, fr)
				if err != nil {
					return nil, err
				}
				elems[i] = val
			}
			return &TupleV{Elems: elems}, nil
		}
	case *pylang.DictExpr:
		keyCs := make([]cExpr, len(v.Items))
		valCs := make([]cExpr, len(v.Items))
		for i, it := range v.Items {
			keyCs[i] = c.expr(it.Key)
			valCs[i] = c.expr(it.Value)
		}
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			d := NewDict()
			for i := range keyCs {
				key, err := keyCs[i](in, fr)
				if err != nil {
					return nil, err
				}
				val, err := valCs[i](in, fr)
				if err != nil {
					return nil, err
				}
				if !d.Set(key, val) {
					return nil, in.NewExc("TypeError", "unhashable type: '%s'", key.TypeName())
				}
			}
			return d, nil
		}
	case *pylang.CondExpr:
		condC := c.expr(v.Cond)
		bodyC := c.expr(v.Body)
		elseC := c.expr(v.OrElse)
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			cond, err := condC(in, fr)
			if err != nil {
				return nil, err
			}
			if Truth(cond) {
				return bodyC(in, fr)
			}
			return elseC(in, fr)
		}
	case *pylang.LambdaExpr:
		holder := c.cache.funcHolder(v)
		defIdx, defCs := c.defaults(v.Params)
		params := v.Params
		nparams := len(v.Params)
		body := v.Body
		return func(in *Interp, fr *frame) (Value, *PyErr) {
			defaults, err := runDefaults(in, fr, nparams, defIdx, defCs)
			if err != nil {
				return nil, err
			}
			fn := &FuncV{Name: "<lambda>", Params: params, Expr: body,
				Globals: fr.globals, Module: fr.module, Env: fr.env,
				Defaults: defaults, code: holder}
			in.Alloc.Alloc(SizeOf(fn))
			return fn, nil
		}
	}
	node := e
	return func(in *Interp, fr *frame) (Value, *PyErr) {
		return nil, in.NewExc("RuntimeError", "unknown expression %T", node)
	}
}

// defaults compiles parameter default expressions, keeping parameter order
// (the walker evaluates defaults in declaration order).
func (c *compiler) defaults(params []pylang.Param) ([]int, []cExpr) {
	var idx []int
	var cs []cExpr
	for i, p := range params {
		if p.Default == nil {
			continue
		}
		idx = append(idx, i)
		cs = append(cs, c.expr(p.Default))
	}
	return idx, cs
}

func runDefaults(in *Interp, fr *frame, nparams int, idx []int, cs []cExpr) ([]Value, *PyErr) {
	if len(cs) == 0 {
		return nil, nil
	}
	out := make([]Value, nparams)
	for k, dc := range cs {
		val, err := dc(in, fr)
		if err != nil {
			return nil, err
		}
		out[idx[k]] = val
	}
	return out, nil
}
