package pyruntime

// Differential testing of the two execution engines. The compiled engine
// must be observationally indistinguishable from the AST walker through every
// simulated observable: stdout, virtual clock, simulated allocator (used and
// peak), remote-call journal, namespace insertion order, and the full
// exception chain (class, message, position, location, causes). These tests
// and FuzzCompileEval enforce that contract program-by-program; the
// experiments golden tests enforce it corpus-wide.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/pyparser"
	"repro/internal/vfs"
)

// engineObs is everything an engine run can influence, rendered to one
// comparable string.
type engineObs struct {
	stdout  string
	clockNS int64
	used    int64
	peak    int64
	errs    string
	names   string
	remote  string
}

func (o engineObs) String() string {
	return fmt.Sprintf("stdout=%q clock=%d used=%d peak=%d err=%q names=%q remote=%q",
		o.stdout, o.clockNS, o.used, o.peak, o.errs, o.names, o.remote)
}

// renderChain renders a PyErr with its full implicit-cause chain.
func renderChain(err *PyErr) string {
	if err == nil {
		return ""
	}
	var b strings.Builder
	for depth := 0; err != nil && depth < 64; depth++ {
		if depth > 0 {
			b.WriteString(" <- ")
		}
		fmt.Fprintf(&b, "%s: %s @%s in %s", err.ClassName(), err.Message(), err.Pos, err.Where)
		err = err.Cause
	}
	return b.String()
}

// runWithEngine executes src as __main__ over files with the given engine in
// a fully fresh environment (own FS, interpreter, caches) and returns the
// rendered observation. The fuel bound keeps fuzz inputs terminating while
// remaining high enough that both engines hit it at the same statement.
func runWithEngine(t testing.TB, src string, files map[string]string, e Engine) engineObs {
	if t != nil {
		t.Helper()
	}
	fs := vfs.New()
	for path, content := range files {
		fs.Write(path, content)
	}
	in := New(fs)
	in.SetEngine(e)
	in.SetFuel(200_000)
	mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
	mod.Dict.Set("__name__", StrV("__main__"))
	parsed, err := pyparser.Parse("__main__", src)
	if err != nil {
		// Callers pre-check parseability; a parse failure is engine-neutral.
		return engineObs{errs: "parse: " + err.Error()}
	}
	perr := in.RunModule(mod, parsed.Body)
	return engineObs{
		stdout:  in.OutputString(),
		clockNS: int64(in.Clock.Now()),
		used:    in.Alloc.Used(),
		peak:    in.Alloc.Peak(),
		errs:    renderChain(perr),
		names:   strings.Join(mod.Dict.Names(), ","),
		remote:  fmt.Sprintf("%v", in.RemoteLog),
	}
}

// diffEngines runs src through both engines and fails on any divergence.
func diffEngines(t *testing.T, src string, files map[string]string) {
	t.Helper()
	walker := runWithEngine(t, src, files, EngineWalker)
	compiled := runWithEngine(t, src, files, EngineCompiled)
	if walker != compiled {
		t.Errorf("engines diverge on:\n%s\n walker:   %v\n compiled: %v", src, walker, compiled)
	}
}

var differentialPrograms = []string{
	// Slot-mode functions: locals, defaults, kwargs, loops, early return.
	`
def f(a, b=10, c=2):
    total = 0
    for i in range(a):
        total = total + i * b
        if total > 100:
            break
    else:
        total = total + c
    return total
print(f(3), f(10), f(b=1, a=4), f(2, c=99))
`,
	// Generic (env) functions: closures, nested defs, global declarations.
	`
counter = 0
def make_adder(n):
    def add(x):
        return x + n
    return add
def bump():
    global counter
    counter = counter + 1
a = make_adder(5)
bump(); bump()
print(a(10), counter)
`,
	// Classes, methods, instances, attribute errors caught and chained.
	`
class Greeter:
    prefix = "hi"
    def __init__(self, name):
        self.name = name
    def greet(self):
        return self.prefix + " " + self.name
g = Greeter("bob")
print(g.greet())
try:
    g.missing
except AttributeError as e:
    print("caught", e)
`,
	// Exception chains: raise inside except, finally interplay.
	`
def boom():
    try:
        [] [1]
    except IndexError:
        raise ValueError("secondary")
    finally:
        print("cleanup")
try:
    boom()
except ValueError as e:
    print("got", e)
`,
	// Uncaught error with a cause chain: exercises renderChain equality.
	`
try:
    {}["k"]
except KeyError:
    1 // 0
`,
	// String/dict/tuple iteration, containment, slicing, formatting.
	`
s = "hello"
acc = []
for ch in s:
    acc.append(ch.upper())
d = {"a": 1, "b": 2}
for k in d:
    acc.append(k)
t = (1, 2, 3)
print("-".join(acc), s[1:4], t[::-1] if False else t, "l" in s, "%s=%d" % ("x", 7))
`,
	// Augmented assignment through attributes and indexes (double-eval).
	`
class Box:
    pass
b = Box()
b.v = 1
b.v += 2
xs = [1, 2, 3]
xs[1] += 10
print(b.v, xs)
`,
	// Deep-ish recursion plus interned small-int identity.
	`
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
x = 256
y = 255 + 1
print(fib(12), x is y, x == y)
`,
	// del + name errors, lambda defaults and conditional expressions.
	`
x = 5
del x
try:
    print(x)
except NameError as e:
    print("gone:", e)
f = lambda a, b=3: a * b if a > 0 else -a
print(f(2), f(-4, 10))
`,
	// Duplicate parameters keep the walker call path under both engines.
	`
def dup(a, a):
    return a
print(dup(1, 2))
`,
	// Recursion limit: error class, message, and virtual clock must agree.
	`
def down(n):
    return down(n + 1)
try:
    down(0)
except RecursionError as e:
    print("depth:", e)
`,
	// Fuel exhaustion: both engines must die on the same statement.
	`
i = 0
while True:
    i = i + 1
`,
}

func TestEngineDifferentialPrograms(t *testing.T) {
	for i, src := range differentialPrograms {
		t.Run(fmt.Sprintf("p%02d", i), func(t *testing.T) { diffEngines(t, src, nil) })
	}
}

func TestEngineDifferentialImports(t *testing.T) {
	files := map[string]string{
		"site-packages/libfoo/__init__.py": `
from libfoo.core import work, VERSION
value = work(3)
`,
		"site-packages/libfoo/core.py": `
VERSION = "1.2"
def work(n):
    out = []
    for i in range(n):
        out.append(i * i)
    return out
`,
	}
	src := `
import libfoo
from libfoo.core import work
print(libfoo.value, libfoo.VERSION, work(2))
try:
    import nosuchmod
except ModuleNotFoundError as e:
    print("missing:", e)
`
	diffEngines(t, src, files)

	// Import-owned module bodies warm up JIT-style (walked on first
	// sighting, compiled from the second on). Re-running the program over a
	// shared cache makes the second run execute the libfoo bodies as
	// compiled streams; both runs must match the walker observation.
	walker := runWithEngine(t, src, files, EngineWalker)
	shared := NewASTCache()
	parsed, err := pyparser.Parse("__main__", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for round := 0; round < 3; round++ {
		fs := vfs.New()
		for path, content := range files {
			fs.Write(path, content)
		}
		in := New(fs)
		in.SetEngine(EngineCompiled)
		in.SetASTCache(shared)
		in.SetFuel(200_000)
		mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
		mod.Dict.Set("__name__", StrV("__main__"))
		perr := in.RunModule(mod, parsed.Body)
		got := engineObs{
			stdout:  in.OutputString(),
			clockNS: int64(in.Clock.Now()),
			used:    in.Alloc.Used(),
			peak:    in.Alloc.Peak(),
			errs:    renderChain(perr),
			names:   strings.Join(mod.Dict.Names(), ","),
			remote:  fmt.Sprintf("%v", in.RemoteLog),
		}
		if got != walker {
			t.Fatalf("compiled round %d (warmup) diverges from walker:\n walker:   %v\n compiled: %v", round, walker, got)
		}
	}
}

// TestEngineSnapshotReplay checks byte-identity when the compiled engine
// replays captured import windows (FuncV code travels through snapshots).
func TestEngineSnapshotReplay(t *testing.T) {
	files := map[string]string{
		"site-packages/snaplib.py": `
def triple(x):
    return x * 3
table = [triple(i) for i in range(3)] if False else [triple(0), triple(1)]
`,
	}
	src := `
import snaplib
print(snaplib.table, snaplib.triple(7))
`
	for _, e := range []Engine{EngineWalker, EngineCompiled} {
		var first engineObs
		snap := NewSnapshotCache()
		for round := 0; round < 3; round++ {
			fs := vfs.New()
			for path, content := range files {
				fs.Write(path, content)
			}
			in := New(fs)
			in.SetEngine(e)
			in.SetSnapshots(snap)
			mod := &ModuleV{Name: "__main__", Dict: NewNamespace()}
			mod.Dict.Set("__name__", StrV("__main__"))
			parsed, err := pyparser.Parse("__main__", src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			perr := in.RunModule(mod, parsed.Body)
			got := engineObs{
				stdout:  in.OutputString(),
				clockNS: int64(in.Clock.Now()),
				used:    in.Alloc.Used(),
				peak:    in.Alloc.Peak(),
				errs:    renderChain(perr),
				names:   strings.Join(mod.Dict.Names(), ","),
			}
			if round == 0 {
				first = got
			} else if got != first {
				t.Fatalf("engine %v: replay round %d diverges:\n first: %v\n round: %v", e, round, first, got)
			}
		}
	}
}

// FuzzCompileEval feeds arbitrary programs through both engines and fails on
// any divergence in value, exception chain, namespace order, or simulated
// clock/allocator.
func FuzzCompileEval(f *testing.F) {
	for _, src := range differentialPrograms {
		f.Add(src)
	}
	f.Add("x = [i for i in (1,2)]")
	f.Add("print((lambda a=1, b=2: a - b)())")
	f.Add("try:\n    assert 1 > 2, 'nope'\nexcept AssertionError as e:\n    print(e)")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		if _, err := pyparser.Parse("__main__", src); err != nil {
			return // engine-independent; nothing to compare
		}
		walker := runWithEngine(t, src, nil, EngineWalker)
		compiled := runWithEngine(t, src, nil, EngineCompiled)
		if walker != compiled {
			t.Fatalf("engines diverge on:\n%s\n walker:   %v\n compiled: %v", src, walker, compiled)
		}
	})
}

// TestSnapshotCacheInsertBounded hammers insert from many goroutines and
// asserts the per-key FIFO cap invariant plus consistent entry/eviction
// accounting.
func TestSnapshotCacheInsertBounded(t *testing.T) {
	sc := NewSnapshotCache()
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sc.insert(&snapEntry{
					name:   fmt.Sprintf("mod%d", i%3), // few keys -> heavy eviction
					bodyFP: "fp",
					sfp:    fmt.Sprintf("state-%d-%d", g, i),
				})
			}
		}(g)
	}
	wg.Wait()

	sc.mu.RLock()
	live := int64(0)
	for key, list := range sc.m {
		if len(list) > snapEntriesPerKey {
			t.Errorf("key %q holds %d entries, cap is %d", key, len(list), snapEntriesPerKey)
		}
		seen := make(map[string]bool, len(list))
		for _, e := range list {
			if seen[e.sfp] {
				t.Errorf("key %q holds duplicate sfp %q", key, e.sfp)
			}
			seen[e.sfp] = true
		}
		live += int64(len(list))
	}
	sc.mu.RUnlock()

	st := sc.Stats()
	if st.Entries != live {
		t.Errorf("Stats.Entries = %d, live entries = %d", st.Entries, live)
	}
	// Every distinct sfp was inserted once; all but the live ones must have
	// been evicted (duplicates were rejected before accounting).
	if want := int64(goroutines*perG) - live; st.Evictions != want {
		t.Errorf("Stats.Evictions = %d, want %d (inserted %d, live %d)",
			st.Evictions, want, goroutines*perG, live)
	}
}
