package pyruntime

import (
	"fmt"
	"sync/atomic"
)

// Engine selects the execution engine for a given interpreter.
//
// The compiled engine (the default) lowers module bodies and function
// definitions to a flat stream of pre-resolved closures cached per AST node,
// interns small ints and short strings process-wide, and arena-allocates
// per-invocation frames and local slots. The AST walker is the reference
// implementation: both engines produce byte-identical simulated observables
// (virtual clock, simulated allocator, fuel, stdout, remote journal, error
// text and positions) on every program — the differential fuzzer and the
// engine smoke target enforce this (DESIGN.md §12).
type Engine int

const (
	// EngineDefault resolves to the process-wide default engine.
	EngineDefault Engine = iota
	// EngineCompiled executes pre-compiled closure streams (default).
	EngineCompiled
	// EngineWalker executes the AST directly (reference implementation).
	EngineWalker
)

func (e Engine) String() string {
	switch e {
	case EngineDefault:
		return "default"
	case EngineCompiled:
		return "compiled"
	case EngineWalker:
		return "walker"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps a CLI flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "default", "compiled":
		return EngineCompiled, nil
	case "walker":
		return EngineWalker, nil
	}
	return EngineDefault, fmt.Errorf("unknown engine %q (want compiled or walker)", s)
}

// defaultEngine is the process-wide engine used by interpreters that do not
// select one explicitly. Stored atomically so CLIs can set it once at start
// while tests and parallel pipelines construct interpreters concurrently.
var defaultEngine atomic.Int32

// SetDefaultEngine sets the process-wide default engine. EngineDefault
// restores the built-in default (compiled).
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine returns the process-wide default engine.
func DefaultEngine() Engine {
	if e := Engine(defaultEngine.Load()); e != EngineDefault {
		return e
	}
	return EngineCompiled
}

// SetEngine selects this interpreter's engine. EngineDefault re-resolves
// the process-wide default. Call before executing any code; switching
// mid-run is not supported.
func (in *Interp) SetEngine(e Engine) {
	if e == EngineDefault {
		e = DefaultEngine()
	}
	in.engine = e
}

// EngineOf reports the engine this interpreter executes with.
func (in *Interp) EngineOf() Engine { return in.engine }

func (in *Interp) engineCompiled() bool { return in.engine == EngineCompiled }
