// Package pyruntime implements the object model, evaluator, builtins and
// import machinery for the Python subset. It is the substrate on which
// λ-trim's analyzer, profiler and debloater operate: module execution builds
// namespace dictionaries statement by statement, imports are cached in a
// sys.modules-style table, and import hooks let the profiler observe the
// marginal time and memory of every module — exactly the mechanisms the
// paper's pipeline patches in CPython.
package pyruntime

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pylang"
)

// Value is any runtime value.
type Value interface {
	// TypeName returns the Python-visible type name ("int", "module", ...).
	TypeName() string
}

// ---------------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------------

// NoneV is the None singleton's type.
type NoneV struct{}

// None is the sole None value.
var None = NoneV{}

func (NoneV) TypeName() string { return "NoneType" }

// BoolV is a boolean.
type BoolV bool

func (BoolV) TypeName() string { return "bool" }

// IntV is an integer.
type IntV int64

func (IntV) TypeName() string { return "int" }

// FloatV is a float.
type FloatV float64

func (FloatV) TypeName() string { return "float" }

// StrV is a string.
type StrV string

func (StrV) TypeName() string { return "str" }

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

// ListV is a mutable list.
type ListV struct {
	Elems []Value
}

func (*ListV) TypeName() string { return "list" }

// TupleV is an immutable sequence.
type TupleV struct {
	Elems []Value
}

func (*TupleV) TypeName() string { return "tuple" }

type dictEntry struct {
	key Value
	val Value
}

// DictV is an insertion-ordered dictionary, matching Python 3.7+ semantics
// so printed output is deterministic.
type DictV struct {
	order   []string
	entries map[string]dictEntry
}

// NewDict returns an empty dict.
func NewDict() *DictV {
	return &DictV{entries: make(map[string]dictEntry)}
}

func (*DictV) TypeName() string { return "dict" }

// hashKey produces the internal key for hashable values.
func hashKey(v Value) (string, bool) {
	switch t := v.(type) {
	case NoneV:
		return "N", true
	case BoolV:
		if t {
			return "bT", true
		}
		return "bF", true
	case IntV:
		return "i" + strconv.FormatInt(int64(t), 10), true
	case FloatV:
		// int/float equality: 1 and 1.0 hash the same, as in Python.
		if float64(int64(t)) == float64(t) {
			return "i" + strconv.FormatInt(int64(t), 10), true
		}
		return "f" + strconv.FormatFloat(float64(t), 'g', -1, 64), true
	case StrV:
		return "s" + string(t), true
	case *TupleV:
		var sb strings.Builder
		sb.WriteString("t(")
		for _, e := range t.Elems {
			k, ok := hashKey(e)
			if !ok {
				return "", false
			}
			sb.WriteString(k)
			sb.WriteByte(',')
		}
		sb.WriteByte(')')
		return sb.String(), true
	}
	return "", false
}

// Get looks up key.
func (d *DictV) Get(key Value) (Value, bool) {
	h, ok := hashKey(key)
	if !ok {
		return nil, false
	}
	e, ok := d.entries[h]
	if !ok {
		return nil, false
	}
	return e.val, true
}

// Set inserts or replaces key.
func (d *DictV) Set(key, val Value) bool {
	h, ok := hashKey(key)
	if !ok {
		return false
	}
	if _, exists := d.entries[h]; !exists {
		d.order = append(d.order, h)
	}
	d.entries[h] = dictEntry{key: key, val: val}
	return true
}

// Delete removes key, reporting whether it was present.
func (d *DictV) Delete(key Value) bool {
	h, ok := hashKey(key)
	if !ok {
		return false
	}
	if _, exists := d.entries[h]; !exists {
		return false
	}
	delete(d.entries, h)
	for i, o := range d.order {
		if o == h {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return true
}

// Len returns the number of entries.
func (d *DictV) Len() int { return len(d.entries) }

// Items returns key/value pairs in insertion order.
func (d *DictV) Items() [][2]Value {
	out := make([][2]Value, 0, len(d.order))
	for _, h := range d.order {
		e := d.entries[h]
		out = append(out, [2]Value{e.key, e.val})
	}
	return out
}

// SetStr is a convenience for string keys.
func (d *DictV) SetStr(key string, val Value) { d.Set(StrV(key), val) }

// GetStr is a convenience for string keys.
func (d *DictV) GetStr(key string) (Value, bool) { return d.Get(StrV(key)) }

// ---------------------------------------------------------------------------
// Callables, classes, modules
// ---------------------------------------------------------------------------

// FuncV is a user-defined function (or lambda) with its defining globals.
type FuncV struct {
	Name    string
	Params  []pylang.Param
	Body    []pylang.Stmt // nil for lambdas
	Expr    pylang.Expr   // lambda body
	Globals *Namespace    // module globals at definition site
	Module  string        // defining module, for diagnostics
	Env     *Env          // enclosing local env for closures (may be nil)
	Cost    int64         // extra virtual nanoseconds charged per call
	// Defaults holds parameter default values evaluated at definition
	// time (CPython semantics); nil entries mark required parameters.
	Defaults []Value
	// code is the lazily compiled body shared by every FuncV created from
	// the same def/lambda node (see compile.go). nil when the function was
	// defined under the walker engine; calls then take the walker path.
	// node, when code is nil, is the def/lambda node a compiled-engine call
	// resolves the shared holder from on first use — most functions defined
	// during imports are never called, so definition stays cache-free.
	code *funcCode
	node pylang.Node
}

func (*FuncV) TypeName() string { return "function" }

// BuiltinV is a function implemented in Go.
type BuiltinV struct {
	Name string
	Fn   func(in *Interp, args []Value, kwargs map[string]Value) (Value, *PyErr)
}

func (*BuiltinV) TypeName() string { return "builtin_function_or_method" }

// ClassV is a class object. A nil Base means the implicit root (object).
type ClassV struct {
	Name   string
	Base   *ClassV
	Dict   *Namespace
	Module string
	// Exception marks builtin exception classes so "except E" can match
	// raised values structurally.
	Exception bool
}

func (*ClassV) TypeName() string { return "type" }

// IsSubclassOf reports whether c is other or derives from it.
func (c *ClassV) IsSubclassOf(other *ClassV) bool {
	for k := c; k != nil; k = k.Base {
		if k == other {
			return true
		}
	}
	return false
}

// InstanceV is an instance of a user class (including exception instances).
type InstanceV struct {
	Class *ClassV
	Dict  *Namespace
}

func (i *InstanceV) TypeName() string { return i.Class.Name }

// BoundMethodV pairs a receiver with a function.
type BoundMethodV struct {
	Recv Value
	Fn   *FuncV
}

func (*BoundMethodV) TypeName() string { return "method" }

// ModuleV is an imported module: a namespace plus identity.
type ModuleV struct {
	Name string // dotted name
	Dict *Namespace
	File string // vfs path it was loaded from
}

func (*ModuleV) TypeName() string { return "module" }

// Namespace is an insertion-ordered string-keyed mapping used for module
// globals, class dicts and instance dicts. Order determines dir() output and
// keeps every experiment deterministic.
type Namespace struct {
	order []string
	m     map[string]Value
}

// NewNamespace returns an empty namespace.
func NewNamespace() *Namespace {
	return &Namespace{m: make(map[string]Value)}
}

// newNamespaceSize returns an empty namespace pre-sized for n attributes;
// snapshot replay knows the final size up front and skips the map growth.
func newNamespaceSize(n int) *Namespace {
	return &Namespace{m: make(map[string]Value, n)}
}

// Get looks up name.
func (ns *Namespace) Get(name string) (Value, bool) {
	v, ok := ns.m[name]
	return v, ok
}

// Set binds name. The map is allocated lazily so namespaces that stay empty
// (most builtin exception class dicts) cost a single small allocation.
func (ns *Namespace) Set(name string, v Value) {
	if _, ok := ns.m[name]; !ok {
		if ns.m == nil {
			ns.m = make(map[string]Value, 4)
		}
		ns.order = append(ns.order, name)
	}
	ns.m[name] = v
}

// Delete unbinds name, reporting whether it was bound.
func (ns *Namespace) Delete(name string) bool {
	if _, ok := ns.m[name]; !ok {
		return false
	}
	delete(ns.m, name)
	for i, o := range ns.order {
		if o == name {
			ns.order = append(ns.order[:i], ns.order[i+1:]...)
			break
		}
	}
	return true
}

// Names returns bound names in insertion order.
func (ns *Namespace) Names() []string {
	out := make([]string, len(ns.order))
	copy(out, ns.order)
	return out
}

// SortedNames returns bound names sorted, for dir()-style listings.
func (ns *Namespace) SortedNames() []string {
	out := ns.Names()
	sort.Strings(out)
	return out
}

// Len returns the number of bindings.
func (ns *Namespace) Len() int { return len(ns.m) }

// Env is a local variable environment with a parent chain for closures.
type Env struct {
	vars   map[string]Value
	parent *Env
	// globalNames holds names declared global in this scope.
	globalNames map[string]bool
	// order records binding insertion order when track is set. Class bodies
	// enable it so the class dict is populated deterministically instead of
	// by Go map iteration (which randomized attribute order run to run).
	order []string
	track bool
}

// NewEnv returns a child environment of parent (parent may be nil).
func NewEnv(parent *Env) *Env {
	return &Env{vars: make(map[string]Value), parent: parent}
}

func (e *Env) lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// set binds name in this scope, maintaining insertion order when tracked.
func (e *Env) set(name string, v Value) {
	if e.track {
		if _, ok := e.vars[name]; !ok {
			e.order = append(e.order, name)
		}
	}
	e.vars[name] = v
}

// del unbinds name in this scope, maintaining insertion order when tracked.
func (e *Env) del(name string) {
	delete(e.vars, name)
	if e.track {
		for i, o := range e.order {
			if o == name {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

// Str renders a value as str() would.
func Str(v Value) string {
	switch t := v.(type) {
	case StrV:
		return string(t)
	default:
		return Repr(v)
	}
}

// Repr renders a value as repr() would.
func Repr(v Value) string {
	switch t := v.(type) {
	case NoneV:
		return "None"
	case BoolV:
		if t {
			return "True"
		}
		return "False"
	case IntV:
		return strconv.FormatInt(int64(t), 10)
	case FloatV:
		s := strconv.FormatFloat(float64(t), 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "inf") && !strings.Contains(s, "nan") {
			s += ".0"
		}
		return s
	case StrV:
		return "'" + strings.NewReplacer("\\", "\\\\", "'", "\\'", "\n", "\\n", "\t", "\\t").Replace(string(t)) + "'"
	case *ListV:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = Repr(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *TupleV:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = Repr(e)
		}
		if len(parts) == 1 {
			return "(" + parts[0] + ",)"
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *DictV:
		var parts []string
		for _, kv := range t.Items() {
			parts = append(parts, Repr(kv[0])+": "+Repr(kv[1]))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *FuncV:
		return "<function " + t.Name + ">"
	case *BuiltinV:
		return "<built-in function " + t.Name + ">"
	case *ClassV:
		return "<class '" + t.Name + "'>"
	case *InstanceV:
		// Exception instances print like Python: Type(args...).
		if t.Class.Exception {
			if args, ok := t.Dict.Get("args"); ok {
				if tup, ok := args.(*TupleV); ok && len(tup.Elems) == 1 {
					return t.Class.Name + "(" + Repr(tup.Elems[0]) + ")"
				} else if ok {
					return t.Class.Name + Repr(tup)
				}
			}
		}
		return "<" + t.Class.Name + " object>"
	case *BoundMethodV:
		return "<bound method " + t.Fn.Name + ">"
	case *ModuleV:
		return "<module '" + t.Name + "'>"
	}
	return fmt.Sprintf("<%s>", v.TypeName())
}

// Truth evaluates Python truthiness.
func Truth(v Value) bool {
	switch t := v.(type) {
	case NoneV:
		return false
	case BoolV:
		return bool(t)
	case IntV:
		return t != 0
	case FloatV:
		return t != 0
	case StrV:
		return len(t) > 0
	case *ListV:
		return len(t.Elems) > 0
	case *TupleV:
		return len(t.Elems) > 0
	case *DictV:
		return t.Len() > 0
	}
	return true
}

// Equal implements Python ==.
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case NoneV:
		_, ok := b.(NoneV)
		return ok
	case BoolV:
		switch y := b.(type) {
		case BoolV:
			return x == y
		case IntV:
			return boolToInt(bool(x)) == int64(y)
		case FloatV:
			return float64(boolToInt(bool(x))) == float64(y)
		}
		return false
	case IntV:
		switch y := b.(type) {
		case IntV:
			return x == y
		case FloatV:
			return float64(x) == float64(y)
		case BoolV:
			return int64(x) == boolToInt(bool(y))
		}
		return false
	case FloatV:
		switch y := b.(type) {
		case IntV:
			return float64(x) == float64(y)
		case FloatV:
			return x == y
		case BoolV:
			return float64(x) == float64(boolToInt(bool(y)))
		}
		return false
	case StrV:
		y, ok := b.(StrV)
		return ok && x == y
	case *ListV:
		y, ok := b.(*ListV)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !Equal(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *TupleV:
		y, ok := b.(*TupleV)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !Equal(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *DictV:
		y, ok := b.(*DictV)
		if !ok || x.Len() != y.Len() {
			return false
		}
		for _, kv := range x.Items() {
			other, ok := y.Get(kv[0])
			if !ok || !Equal(kv[1], other) {
				return false
			}
		}
		return true
	}
	return a == b
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// SizeOf returns the simulated heap size of a value in bytes. Sizes are
// crude but stable; large library footprints come from load_native, not
// from per-object accounting.
func SizeOf(v Value) int64 {
	switch t := v.(type) {
	case NoneV, BoolV:
		return 0 // interned singletons
	case IntV:
		return 28
	case FloatV:
		return 24
	case StrV:
		return 49 + int64(len(t))
	case *ListV:
		n := int64(56 + 8*len(t.Elems))
		return n
	case *TupleV:
		return int64(40 + 8*len(t.Elems))
	case *DictV:
		return int64(64 + 104*t.Len())
	case *FuncV:
		return 1500
	case *BuiltinV:
		return 72
	case *ClassV:
		return 3000
	case *InstanceV:
		return int64(56 + 64*t.Dict.Len())
	case *BoundMethodV:
		return 64
	case *ModuleV:
		return 4000
	}
	return 48
}
