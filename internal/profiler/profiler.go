// Package profiler implements λ-trim's cost profiler (§5.2 of the paper).
//
// The profiler patches the runtime's import machinery with a hook that
// timestamps every module execution, yielding each module's marginal import
// time t and marginal memory footprint m (both inclusive of the module's
// own submodule imports, per the paper's definition). It then ranks modules
// by marginal monetary cost
//
//	TM − (T−t)(M−m)                                   (Eq. 2)
//
// where T and M are the totals across the whole Function Initialization
// phase, and hands the top-K to the debloater.
package profiler

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/pyruntime"
	"repro/internal/simtime"
	"repro/internal/vfs"
)

// Scoring selects the ranking method; Combined is the paper's Eq. 2 and the
// others are the ablation arms of Figure 9.
type Scoring int

const (
	// Combined ranks by marginal monetary cost (Eq. 2).
	Combined Scoring = iota
	// TimeOnly ranks by marginal import time.
	TimeOnly
	// MemoryOnly ranks by marginal memory footprint.
	MemoryOnly
	// Random assigns each module a seeded random score in [0, 1).
	Random
)

func (s Scoring) String() string {
	switch s {
	case Combined:
		return "combined"
	case TimeOnly:
		return "time"
	case MemoryOnly:
		return "memory"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Scoring(%d)", int(s))
}

// ModuleProfile is the measurement for one module.
type ModuleProfile struct {
	Name       string
	ImportTime time.Duration // marginal t, inclusive of submodules
	MemoryMB   float64       // marginal m, inclusive of submodules
	Score      float64
	Order      int // execution order (0 = first module executed)
}

// Profile is the result of profiling one application's initialization.
type Profile struct {
	Entry      string
	TotalTime  time.Duration // T: full Function Initialization time
	TotalMemMB float64       // M: full Function Initialization footprint
	Modules    []ModuleProfile
}

// TopK returns the K highest-scoring modules (fewer if not enough were
// imported). The slice is ordered best-first and safe to mutate.
func (p *Profile) TopK(k int) []ModuleProfile {
	if k > len(p.Modules) {
		k = len(p.Modules)
	}
	out := make([]ModuleProfile, k)
	copy(out, p.Modules[:k])
	return out
}

// Lookup returns the profile for a module name.
func (p *Profile) Lookup(name string) (ModuleProfile, bool) {
	for _, m := range p.Modules {
		if m.Name == name {
			return m, true
		}
	}
	return ModuleProfile{}, false
}

// importHook measures marginal time/memory per module via before/after
// deltas, mirroring the paper's patched module loader.
type importHook struct {
	clock *simtime.Clock
	alloc *simtime.Allocator
	stack []frameMark
	out   map[string]ModuleProfile
	order int
	tr    *obs.Tracer
}

type frameMark struct {
	name  string
	t0    time.Duration
	mem0  int64
	order int
	sp    *obs.Span
}

func (h *importHook) BeforeModuleExec(name string) {
	// The span nests under the enclosing module's span, mirroring the
	// import structure; the outermost import parents to the profile span.
	var parent *obs.Span
	if len(h.stack) > 0 {
		parent = h.stack[len(h.stack)-1].sp
	}
	sp := h.tr.StartChild(parent, "import "+name, "profiler", h.clock.Now())
	h.stack = append(h.stack, frameMark{
		name: name, t0: h.clock.Now(), mem0: h.alloc.Used(), order: h.order, sp: sp,
	})
	h.order++
}

func (h *importHook) AfterModuleExec(name string, err error) {
	top := h.stack[len(h.stack)-1]
	h.stack = h.stack[:len(h.stack)-1]
	now := h.clock.Now()
	if top.sp != nil {
		top.sp.Add(
			obs.DurationUS("marginal_us", now-top.t0),
			obs.Attr{Key: "marginal_mb", Val: strconv.FormatFloat(simtime.MBf(h.alloc.Used()-top.mem0), 'f', 3, 64)},
		)
		if err != nil {
			top.sp.Add(obs.String("error", err.Error()))
		}
		top.sp.Finish(now)
	}
	if err != nil {
		return
	}
	h.out[name] = ModuleProfile{
		Name:       name,
		ImportTime: now - top.t0,
		MemoryMB:   simtime.MBf(h.alloc.Used() - top.mem0),
		Order:      top.order,
	}
}

// Options configures a profiling run.
type Options struct {
	Scoring Scoring
	// Seed drives the Random scoring method only.
	Seed int64
	// Exclude lists module names never considered candidates (the entry
	// module is always excluded).
	Exclude []string
	// Tracer, when non-nil, records the profiling run as a span tree on
	// the profiling interpreter's clock: one "profile" span holding one
	// span per module execution, nested by import structure, each
	// carrying its marginal time and memory.
	Tracer *obs.Tracer
	// Engine selects the runtime execution engine; the zero value resolves
	// the process-wide default. Both engines produce byte-identical
	// simulated observables (DESIGN.md §12), so the profile is engine-
	// independent; the knob exists for differential testing and benchmarks.
	Engine pyruntime.Engine
}

// Run imports the entry module in a fresh, isolated interpreter (the
// paper's "module isolation": a new process per phase) and returns the
// ranked profile.
func Run(image *vfs.FS, entry string, opts Options) (*Profile, error) {
	in := pyruntime.New(image)
	in.SetEngine(opts.Engine)
	hook := &importHook{
		clock: in.Clock,
		alloc: in.Alloc,
		out:   make(map[string]ModuleProfile),
		tr:    opts.Tracer,
	}
	in.AddImportHook(hook)

	t0 := in.Clock.Now()
	m0 := in.Alloc.Used()
	sp := opts.Tracer.Start("profile "+entry, "profiler", t0)
	if _, err := in.Import(entry); err != nil {
		opts.Tracer.End(sp, in.Clock.Now())
		return nil, fmt.Errorf("profiler: initialization failed: %s", err.Error())
	}
	prof := &Profile{
		Entry:      entry,
		TotalTime:  in.Clock.Now() - t0,
		TotalMemMB: simtime.MBf(in.Alloc.Used() - m0),
	}
	sp.Add(
		obs.DurationUS("total_us", prof.TotalTime),
		obs.Attr{Key: "total_mem_mb", Val: strconv.FormatFloat(prof.TotalMemMB, 'f', 3, 64)},
	)
	opts.Tracer.End(sp, in.Clock.Now())
	opts.Tracer.Metrics().Observe("profiler.init.seconds", prof.TotalTime.Seconds())

	excluded := map[string]bool{entry: true}
	for _, e := range opts.Exclude {
		excluded[e] = true
	}
	for name, mp := range hook.out {
		if excluded[name] {
			continue
		}
		prof.Modules = append(prof.Modules, mp)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	// Random scores must be assigned in a deterministic module order.
	sort.Slice(prof.Modules, func(i, j int) bool {
		return prof.Modules[i].Name < prof.Modules[j].Name
	})
	for i := range prof.Modules {
		prof.Modules[i].Score = score(opts.Scoring, prof.Modules[i], prof, rng)
	}
	sort.SliceStable(prof.Modules, func(i, j int) bool {
		if prof.Modules[i].Score != prof.Modules[j].Score {
			return prof.Modules[i].Score > prof.Modules[j].Score
		}
		return prof.Modules[i].Name < prof.Modules[j].Name
	})
	opts.Tracer.Metrics().Inc("profiler.modules", int64(len(prof.Modules)))
	return prof, nil
}

// score computes a module's ranking score under the selected method.
func score(method Scoring, m ModuleProfile, p *Profile, rng *rand.Rand) float64 {
	T := p.TotalTime.Seconds()
	M := p.TotalMemMB
	t := m.ImportTime.Seconds()
	mem := m.MemoryMB
	switch method {
	case Combined:
		// Marginal monetary cost: TM − (T−t)(M−m). Expanding shows why it
		// beats single-axis scoring: tM + mT − tm — a module scores by its
		// time weighted by the app's total memory plus its memory weighted
		// by total time.
		return T*M - (T-t)*(M-mem)
	case TimeOnly:
		return t
	case MemoryOnly:
		return mem
	case Random:
		return rng.Float64()
	}
	return 0
}

// MarginalMonetaryCost exposes Eq. 2 directly for tests and documentation.
func MarginalMonetaryCost(t, T time.Duration, m, M float64) float64 {
	return T.Seconds()*M - (T-t).Seconds()*(M-m)
}
