package profiler

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vfs"
)

// image builds a deployment image with an entry importing two libraries of
// very different cost profiles plus a nested submodule.
func image() *vfs.FS {
	fs := vfs.New()
	fs.Write("handler.py", `
import slowlib
import fastlib

def handler(event, context):
    return None
`)
	fs.Write("site-packages/slowlib/__init__.py", `
load_native(500, 80)
from slowlib.sub import helper
def top():
    return 1
`)
	fs.Write("site-packages/slowlib/sub/__init__.py", `
load_native(120, 10)
def helper():
    return 2
`)
	fs.Write("site-packages/fastlib/__init__.py", `
load_native(10, 2)
def quick():
    return 3
`)
	return fs
}

func TestProfileMeasuresMarginals(t *testing.T) {
	prof, err := Run(image(), "handler", Options{Scoring: Combined})
	if err != nil {
		t.Fatal(err)
	}
	slow, ok := prof.Lookup("slowlib")
	if !ok {
		t.Fatal("slowlib not profiled")
	}
	fast, _ := prof.Lookup("fastlib")
	sub, _ := prof.Lookup("slowlib.sub")

	// Marginals are inclusive of submodules, per the paper's definition.
	if slow.ImportTime < 620*time.Millisecond {
		t.Errorf("slowlib marginal %v should include its submodule (≥620ms)", slow.ImportTime)
	}
	if sub.ImportTime < 120*time.Millisecond || sub.ImportTime > 200*time.Millisecond {
		t.Errorf("slowlib.sub marginal = %v, want ≈120ms", sub.ImportTime)
	}
	if fast.ImportTime > 50*time.Millisecond {
		t.Errorf("fastlib marginal = %v, want ≈10ms", fast.ImportTime)
	}
	if slow.MemoryMB < 89 || slow.MemoryMB > 95 {
		t.Errorf("slowlib memory = %.1f, want ≈90MB", slow.MemoryMB)
	}

	// Totals cover the whole initialization.
	if prof.TotalTime < slow.ImportTime {
		t.Errorf("total %v < slowlib marginal %v", prof.TotalTime, slow.ImportTime)
	}
	if prof.TotalMemMB < slow.MemoryMB {
		t.Errorf("total mem %.1f < slowlib mem %.1f", prof.TotalMemMB, slow.MemoryMB)
	}
}

func TestEntryModuleExcluded(t *testing.T) {
	prof, err := Run(image(), "handler", Options{Scoring: Combined})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prof.Lookup("handler"); ok {
		t.Error("entry module must not be a debloating candidate")
	}
}

func TestCombinedRankingOrder(t *testing.T) {
	prof, err := Run(image(), "handler", Options{Scoring: Combined})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Modules[0].Name != "slowlib" {
		t.Errorf("top module = %s, want slowlib", prof.Modules[0].Name)
	}
	// Scores are non-increasing.
	for i := 1; i < len(prof.Modules); i++ {
		if prof.Modules[i].Score > prof.Modules[i-1].Score {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
}

func TestTopK(t *testing.T) {
	prof, err := Run(image(), "handler", Options{Scoring: Combined})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prof.TopK(2)); got != 2 {
		t.Errorf("TopK(2) = %d entries", got)
	}
	if got := len(prof.TopK(100)); got != len(prof.Modules) {
		t.Errorf("TopK(100) = %d entries, want %d", got, len(prof.Modules))
	}
}

func TestScoringMethodsDiffer(t *testing.T) {
	// Build an image where time-only and memory-only rankings disagree:
	// one module is slow but light, the other fast but heavy.
	fs := vfs.New()
	fs.Write("handler.py", "import slowlight\nimport fastheavy\n\ndef handler(event, context):\n    return None\n")
	fs.Write("site-packages/slowlight/__init__.py", "load_native(400, 1)\n")
	fs.Write("site-packages/fastheavy/__init__.py", "load_native(5, 200)\n")

	timeProf, err := Run(fs, "handler", Options{Scoring: TimeOnly})
	if err != nil {
		t.Fatal(err)
	}
	memProf, err := Run(fs, "handler", Options{Scoring: MemoryOnly})
	if err != nil {
		t.Fatal(err)
	}
	if timeProf.Modules[0].Name != "slowlight" {
		t.Errorf("time-only top = %s", timeProf.Modules[0].Name)
	}
	if memProf.Modules[0].Name != "fastheavy" {
		t.Errorf("memory-only top = %s", memProf.Modules[0].Name)
	}
}

func TestRandomScoringDeterministicBySeed(t *testing.T) {
	a, err := Run(image(), "handler", Options{Scoring: Random, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(image(), "handler", Options{Scoring: Random, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(image(), "handler", Options{Scoring: Random, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Modules {
		if a.Modules[i].Name != b.Modules[i].Name {
			t.Fatal("same seed produced different rankings")
		}
	}
	same := true
	for i := range a.Modules {
		if a.Modules[i].Name != c.Modules[i].Name {
			same = false
		}
	}
	if same && len(a.Modules) > 2 {
		t.Log("warning: different seeds produced identical ranking (possible but unlikely)")
	}
}

func TestRunFailsOnBrokenInit(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", "import missing_module\n")
	if _, err := Run(fs, "handler", Options{}); err == nil {
		t.Error("expected error for failing initialization")
	}
}

// TestMarginalMonetaryCostFormula pins Eq. 2 to its algebraic expansion
// tM + mT − tm.
func TestMarginalMonetaryCostFormula(t *testing.T) {
	T := 4 * time.Second
	M := 100.0
	tt := 1 * time.Second
	m := 25.0
	got := MarginalMonetaryCost(tt, T, m, M)
	want := tt.Seconds()*M + m*T.Seconds() - tt.Seconds()*m
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Eq.2 = %f, expansion = %f", got, want)
	}
}

// Property: Eq. 2 is monotone in both marginal time and marginal memory —
// the reason it avoids the pathologies of single-axis scoring.
func TestQuickEq2Monotone(t *testing.T) {
	f := func(tRaw, mRaw, dtRaw, dmRaw uint16) bool {
		T := 10 * time.Second
		M := 1000.0
		tt := time.Duration(tRaw) * time.Millisecond / 8 // ≤ ~8.2s < T
		m := float64(mRaw) / 66                          // ≤ ~990 < M
		dt := time.Duration(dtRaw) * time.Microsecond
		dm := float64(dmRaw) / 65536
		base := MarginalMonetaryCost(tt, T, m, M)
		moreTime := MarginalMonetaryCost(tt+dt, T, m, M)
		moreMem := MarginalMonetaryCost(tt, T, m+dm, M)
		return moreTime >= base-1e-9 && moreMem >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
