// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation (§8), plus ablation benches for the
// design choices called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The corpus debloating pipeline (the expensive step shared by most
// figures) runs once in a shared suite, exactly as in the paper's artifact
// workflow where later experiments reuse the debloating experiment's
// outputs. BenchmarkPipeline_FullDebloat measures the pipeline itself from
// scratch per iteration.
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/appcorpus"
	"repro/internal/debloat"
	"repro/internal/experiments"
	"repro/internal/faas"
	"repro/internal/fleet"
	"repro/internal/obs/monitor"
	"repro/internal/obs/query"
	"repro/internal/profiler"
	"repro/internal/pyruntime"
)

var (
	suiteOnce   sync.Once
	sharedSuite *experiments.Suite
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		sharedSuite = experiments.NewSuite()
		// Prime the shared debloat cache on the worker pool so per-figure
		// benches measure regeneration, not the one-time pipeline. The
		// results are schedule-independent (see Suite.DebloatAll).
		if err := sharedSuite.DebloatAll(runtime.GOMAXPROCS(0)); err != nil {
			panic(err)
		}
	})
	return sharedSuite
}

func BenchmarkFigure1_PhaseBreakdown(b *testing.B) {
	s := suite(b)
	var lastShare float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		lastShare = r.InitBillShare
	}
	b.ReportMetric(100*lastShare, "init_bill_%")
}

func BenchmarkTable1_Applications(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2_ColdStartCost(b *testing.B) {
	s := suite(b)
	var median float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		median = r.MedianShare
	}
	b.ReportMetric(100*median, "median_import_%")
}

func BenchmarkFigure8_Debloating(b *testing.B) {
	s := suite(b)
	var speedup, cost float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		speedup, cost = r.AvgSpeedup, r.AvgCostImprove
	}
	b.ReportMetric(speedup, "avg_speedup_x")
	b.ReportMetric(100*cost, "avg_cost_savings_%")
}

func BenchmarkTable2_Baselines(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9_ScoringAblation(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if !r.CombinedWins() {
			b.Fatal("combined scoring lost the ablation")
		}
	}
}

func BenchmarkTable3_DebloatEfficacy(b *testing.B) {
	s := suite(b)
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		saving = r.AvgCkptSaving
	}
	b.ReportMetric(100*saving, "avg_ckpt_savings_%")
}

func BenchmarkFigure10_VaryingK(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		if !r.PlateausAt20(0.01) {
			b.Fatal("no plateau at K=20")
		}
	}
}

func BenchmarkFigure11_WarmStarts(b *testing.B) {
	s := suite(b)
	var impact float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		impact = r.MaxAbsImpact
	}
	b.ReportMetric(100*impact, "max_warm_impact_%")
}

func BenchmarkFigure12_CheckpointRestore(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13_SnapStartCDF(b *testing.B) {
	s := suite(b)
	var median float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		median = r.Curves[1].Median
	}
	b.ReportMetric(100*median, "median_snap_share_%")
}

func BenchmarkFigure14_SnapStartCosts(b *testing.B) {
	s := suite(b)
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		saving = r.AvgSaving
	}
	b.ReportMetric(100*saving, "avg_total_savings_%")
}

func BenchmarkTable4_Fallback(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Pipeline benches — the debloater itself, end to end and per stage.
// ---------------------------------------------------------------------------

// BenchmarkPipeline_FullDebloat measures λ-trim's full pipeline from
// scratch on representative apps of increasing size, across two dimensions:
// import-snapshot memoization on/off, and the compiled engine vs the AST
// walker. Every arm produces byte-identical simulated results (the engine
// contract in DESIGN.md §12 and the memo contract in §9) — only real
// wall-clock and real allocations differ.
func BenchmarkPipeline_FullDebloat(b *testing.B) {
	apps := []string{"markdown", "lightgbm", "spacy", "resnet"}
	if testing.Short() {
		apps = apps[:2]
	}
	for _, name := range apps {
		for _, arm := range []struct {
			label       string
			disableMemo bool
			engine      pyruntime.Engine
		}{
			{"memo", false, pyruntime.EngineCompiled},
			{"nomemo", true, pyruntime.EngineCompiled},
			{"memo-walker", false, pyruntime.EngineWalker},
			{"nomemo-walker", true, pyruntime.EngineWalker},
		} {
			b.Run(name+"/"+arm.label, func(b *testing.B) {
				b.ReportAllocs()
				var oracleRuns int
				for i := 0; i < b.N; i++ {
					app := appcorpus.MustBuild(name)
					cfg := debloat.DefaultConfig()
					cfg.DisableMemo = arm.disableMemo
					cfg.Engine = arm.engine
					res, err := debloat.Run(app, cfg)
					if err != nil {
						b.Fatal(err)
					}
					oracleRuns = res.OracleRuns
				}
				b.ReportMetric(float64(oracleRuns), "oracle_runs")
			})
		}
	}
}

// BenchmarkPipeline_SuitePriming measures the up-front corpus debloat every
// full experiments run performs: sequential vs the bounded worker pool,
// each iteration from a cold suite (fresh caches).
func BenchmarkPipeline_SuitePriming(b *testing.B) {
	if testing.Short() {
		b.Skip("full-corpus priming is too slow for -short")
	}
	pool := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pool = append(pool, n)
	}
	for _, workers := range pool {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.NewSuite()
				if err := s.DebloatAll(workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipeline_Profiler measures the cost-profiling stage alone.
func BenchmarkPipeline_Profiler(b *testing.B) {
	app := appcorpus.MustBuild("resnet")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profiler.Run(app.Image, app.Entry, profiler.Options{Scoring: profiler.Combined}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline_ColdStart measures one simulated cold start.
func BenchmarkPipeline_ColdStart(b *testing.B) {
	app := appcorpus.MustBuild("lightgbm")
	cfg := faas.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faas.MeasureColdStart(app, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (design choices from DESIGN.md §6).
// ---------------------------------------------------------------------------

// BenchmarkAblation_Granularity contrasts attribute- vs statement-
// granularity DD: the paper's §6.1 argues attributes remove more (finer on
// from-imports) — the metric reports attributes removed per arm.
func BenchmarkAblation_Granularity(b *testing.B) {
	for _, arm := range []struct {
		name string
		g    debloat.Granularity
	}{{"attribute", debloat.AttrGranularity}, {"statement", debloat.StmtGranularity}} {
		b.Run(arm.name, func(b *testing.B) {
			var removed int
			for i := 0; i < b.N; i++ {
				app := appcorpus.MustBuild("lightgbm")
				cfg := debloat.DefaultConfig()
				cfg.Granularity = arm.g
				res, err := debloat.Run(app, cfg)
				if err != nil {
					b.Fatal(err)
				}
				removed = res.TotalRemoved()
			}
			b.ReportMetric(float64(removed), "attrs_removed")
		})
	}
}

// BenchmarkAblation_CallGraph measures the effect of PyCG protection on DD
// work: without it, every attribute is a candidate and the oracle must
// rediscover the app's needs dynamically.
func BenchmarkAblation_CallGraph(b *testing.B) {
	for _, arm := range []struct {
		name    string
		disable bool
	}{{"with_pycg", false}, {"without_pycg", true}} {
		b.Run(arm.name, func(b *testing.B) {
			var runs int
			for i := 0; i < b.N; i++ {
				app := appcorpus.MustBuild("lightgbm")
				cfg := debloat.DefaultConfig()
				cfg.DisableCallGraph = arm.disable
				res, err := debloat.Run(app, cfg)
				if err != nil {
					b.Fatal(err)
				}
				runs = res.OracleRuns
			}
			b.ReportMetric(float64(runs), "oracle_runs")
		})
	}
}

// BenchmarkAblation_BillingGranularity measures how the provider's billing
// rounding changes λ-trim's cost savings: AWS bills per 1 ms, GCP rounds to
// 100 ms, Azure to 1 s (paper §1 footnote 1). Coarse rounding swallows
// sub-second savings.
func BenchmarkAblation_BillingGranularity(b *testing.B) {
	s := suite(b)
	res, err := s.Debloat("lightgbm")
	if err != nil {
		b.Fatal(err)
	}
	for _, arm := range []struct {
		name    string
		pricing faas.Pricing
	}{
		{"aws_1ms", faas.AWSPricing()},
		{"gcp_100ms", faas.GCPPricing()},
		{"azure_1s", faas.AzurePricing()},
	} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := s.Platform
			cfg.Pricing = arm.pricing
			var saving float64
			for i := 0; i < b.N; i++ {
				before, err := faas.MeasureColdStart(res.Original, cfg)
				if err != nil {
					b.Fatal(err)
				}
				after, err := faas.MeasureColdStart(res.App, cfg)
				if err != nil {
					b.Fatal(err)
				}
				saving = (before.CostUSD - after.CostUSD) / before.CostUSD
			}
			b.ReportMetric(100*saving, "cost_savings_%")
		})
	}
}

// BenchmarkAblation_ParallelDD measures the §9 future-work feature: the
// wall-clock effect of evaluating DD subsets concurrently.
func BenchmarkAblation_ParallelDD(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				app := appcorpus.MustBuild("resnet")
				cfg := debloat.DefaultConfig()
				cfg.Workers = workers
				if _, err := debloat.Run(app, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtension_BurstColdStorm measures λ-trim under the bursty
// scale-out workload the paper's introduction motivates: a burst of
// concurrent requests against an empty pool cold-starts one instance per
// request, so initialization savings multiply across the whole burst.
func BenchmarkExtension_BurstColdStorm(b *testing.B) {
	s := suite(b)
	res, err := s.Debloat("resnet")
	if err != nil {
		b.Fatal(err)
	}
	const burst = 16
	for _, arm := range []struct {
		name string
		app  func() *faas.Platform
	}{
		{"original", func() *faas.Platform {
			p := faas.New(s.Platform)
			p.Deploy(res.Original)
			return p
		}},
		{"trimmed", func() *faas.Platform {
			p := faas.New(s.Platform)
			p.Deploy(res.App)
			return p
		}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var totalCost, aggInitSec float64
			for i := 0; i < b.N; i++ {
				p := arm.app()
				invs, err := p.InvokeBurst("resnet", map[string]any{}, burst)
				if err != nil {
					b.Fatal(err)
				}
				totalCost, aggInitSec = 0, 0
				for _, inv := range invs {
					totalCost += inv.CostUSD
					aggInitSec += inv.Init.Seconds()
				}
			}
			b.ReportMetric(aggInitSec, "aggregate_init_s")
			b.ReportMetric(totalCost*1000, "burst_cost_milli$")
		})
	}
}

// BenchmarkAblation_FallbackWrapper verifies the wrapper's overhead during
// normal operation is negligible: invocations through a fallback-equipped
// deployment vs a plain one.
func BenchmarkAblation_FallbackWrapper(b *testing.B) {
	s := suite(b)
	res, err := s.Debloat("lightgbm")
	if err != nil {
		b.Fatal(err)
	}
	event := res.Original.Oracle[0].Event

	b.Run("plain", func(b *testing.B) {
		p := faas.New(s.Platform)
		p.Deploy(res.App)
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(res.App.Name, event); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("with_fallback", func(b *testing.B) {
		p := faas.New(s.Platform)
		p.DeployWithFallback(res.App, res.Original)
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(res.App.Name, event); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable2Ext_MeasuredBaselines runs all three debloaters
// (λ-trim cached; FaaSLight and Vulture executed) on the FaaSLight suite.
func BenchmarkTable2Ext_MeasuredBaselines(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2Ext(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitor_ReplayOverhead contrasts the same seeded replay with
// monitoring off (nil *Monitor, the default) and on (TSDB + three SLOs +
// ledger + dashboard). The off arm is the baseline throughput; the on arm's
// ns/op ratio against it is the monitoring overhead, which should stay in
// the low single-digit percent. Output correctness is asserted elsewhere:
// monitor-off replays are byte-identical to pre-monitor main
// (TestMonitorDoesNotPerturbReplay) and monitor-on artifacts are seed-
// deterministic (TestMonitorGoldenDeterminism).
func BenchmarkMonitor_ReplayOverhead(b *testing.B) {
	s := suite(b)
	res, err := s.Debloat("lightgbm")
	if err != nil {
		b.Fatal(err)
	}
	event := res.Original.Oracle[0].Event
	slos, err := monitor.ParseSLOs("p95=900ms,err=2%,costinv=9e-7")
	if err != nil {
		b.Fatal(err)
	}
	const requests = 200
	replay := func(mon *monitor.Monitor) {
		cfg := s.Platform
		cfg.Monitor = mon
		p := faas.New(cfg)
		p.Deploy(res.Original)
		for i := 0; i < requests; i++ {
			if _, err := p.Invoke(res.Original.Name, event); err != nil {
				b.Fatal(err)
			}
			p.Advance(time.Duration(i%5) * time.Second)
		}
		mon.Finish()
	}
	for _, arm := range []struct {
		name string
		mon  func() *monitor.Monitor
	}{
		{"off", func() *monitor.Monitor { return nil }},
		{"on", func() *monitor.Monitor {
			return monitor.New(monitor.Config{
				Resolution:     5 * time.Second,
				SLOs:           slos,
				DashboardEvery: 30 * time.Second,
			})
		}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				replay(arm.mon())
			}
			b.ReportMetric(requests, "invocations/op")
		})
	}
}

// BenchmarkFleet_Replay measures the sharded fleet engine on a synthetic
// corpus-shaped day, with the telemetry plane off (pool dynamics and
// counters only — the raw replay throughput) and on (TSDB windows, three
// ledgers, histogram, registry, exemplars, post-hoc SLO evaluation). The
// metrics report invocations per wall-clock second and allocated bytes per
// invocation; the on/off ratio is the telemetry overhead. Byte-identity
// across worker counts is asserted in internal/fleet's tests — here both
// arms run on GOMAXPROCS shards.
func BenchmarkFleet_Replay(b *testing.B) {
	pc := fleet.DefaultPopConfig()
	if testing.Short() {
		pc.Functions = 1000
	}
	pop := fleet.GeneratePopulation(pc, nil)
	// The rules arm layers per-shard incremental recording rules on top of
	// full telemetry; its delta against telemetry_on is the rule-evaluation
	// overhead (a per-block boundary sweep — a few percent, not a second
	// pass over the samples).
	benchRules, err := query.ParseRules(`
		fleet:cost_usd:sum5m = sum(cost.usd[5m])
		fleet:req:rate5m = rate(req.total[5m])
	`)
	if err != nil {
		b.Fatal(err)
	}
	for _, arm := range []struct {
		name    string
		disable bool
		rules   []query.Rule
	}{
		{"telemetry_on", false, nil},
		{"telemetry_on_rules", false, benchRules},
		{"telemetry_off", true, nil},
	} {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			var inv uint64
			for i := 0; i < b.N; i++ {
				res, err := fleet.Replay(fleet.Config{
					Period:           pc.Period,
					SLOs:             fleet.DefaultSLOs(),
					Seed:             pc.Seed,
					Pricing:          pc.Pricing,
					DisableTelemetry: arm.disable,
					Rules:            arm.rules,
				}, pop)
				if err != nil {
					b.Fatal(err)
				}
				inv = res.Invocations
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			total := float64(inv) * float64(b.N)
			if sec := b.Elapsed().Seconds(); sec > 0 && total > 0 {
				b.ReportMetric(total/sec, "inv/s")
				b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/total, "B/inv")
			}
		})
	}
}

// BenchmarkReliability_FaultedReplay measures the failure-semantics
// extension: a full trace replay with OOM enforcement, timeouts, fault
// injection, and client retries across all three deployments. The metrics
// report the bare debloated deployment's exposure (post-retry failure
// rate) and the fleet-wide retry amplification the faults induce.
func BenchmarkReliability_FaultedReplay(b *testing.B) {
	s := suite(b)
	var failRate, retryAmp float64
	for i := 0; i < b.N; i++ {
		r, err := s.Reliability()
		if err != nil {
			b.Fatal(err)
		}
		failRate, retryAmp = 0, 0
		for _, row := range r.Rows {
			retryAmp += row.RetryAmplification() / float64(len(r.Rows))
			if row.Deployment == "debloated" {
				failRate = row.FailureRate()
			}
		}
	}
	b.ReportMetric(100*failRate, "debloated_fail_%")
	b.ReportMetric(retryAmp, "retry_amplification_x")
}

// BenchmarkQuery_RangeEval measures the mql engine sweeping a day of
// fleet telemetry: a ratio of rates (two trailing-window scans per
// boundary) and a quantile (a scan plus a sort) evaluated at every
// resolution boundary. The metric is boundary evaluations per second —
// the server's /query?step= cost model.
func BenchmarkQuery_RangeEval(b *testing.B) {
	pc := fleet.DefaultPopConfig()
	pc.Functions = 1000
	res, err := fleet.Replay(fleet.Config{
		Period:      pc.Period,
		SLOs:        fleet.DefaultSLOs(),
		Seed:        pc.Seed,
		Pricing:     pc.Pricing,
		LabelSeries: true,
	}, fleet.GeneratePopulation(pc, nil))
	if err != nil {
		b.Fatal(err)
	}
	eng := res.QueryEngine()
	for _, bench := range []struct{ name, q string }{
		{"rate_ratio", `rate(cost.usd[1h]) / rate(req.total[1h])`},
		{"labeled_sum", `sum(cost.usd{phase="init"}[1h])`},
		{"p95", `p95(req.total[1h])`},
	} {
		x, err := query.Parse(bench.q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			var points int
			for i := 0; i < b.N; i++ {
				points = len(eng.Range(x, 0, -1, 0))
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(points)*float64(b.N)/sec, "boundaries/s")
			}
		})
	}
}
