// mlpipeline optimizes the resnet image-classification app (the paper's
// headline workload: 2x E2E speedup) and walks through every pipeline
// stage, then contrasts λ-trim with checkpoint/restore, reproducing the
// crossover discussion of §8.6.
//
// Run with: go run ./examples/mlpipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/analyzer"
	"repro/internal/appcorpus"
	"repro/internal/checkpoint"
	"repro/internal/debloat"
	"repro/internal/faas"
	"repro/internal/profiler"
)

func main() {
	app := appcorpus.MustBuild("resnet")

	// Stage 1 — static analysis: imported modules + PyCG-protected attrs.
	report, err := analyzer.Analyze(app.Image, app.Entry, app.Handler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analyzer: %d imports: %v\n", len(report.Imports), report.Imports)
	fmt.Printf("protected torch attributes (definitely accessed): %v\n",
		report.ProtectedList("torch"))

	// Stage 2 — cost profiling: rank modules by marginal monetary cost.
	prof, err := profiler.Run(app.Image, app.Entry, profiler.Options{Scoring: profiler.Combined})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprofiler: initialization takes %v and %.1f MB; top modules:\n",
		prof.TotalTime, prof.TotalMemMB)
	for i, m := range prof.TopK(5) {
		fmt.Printf("  %d. %-18s t=%7.3fs m=%7.1fMB (Eq.2 score %.3f)\n",
			i+1, m.Name, m.ImportTime.Seconds(), m.MemoryMB, m.Score)
	}

	// Stage 3 — debloating.
	res, err := debloat.Run(app, debloat.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndebloater: %d oracle runs, %d attributes removed\n",
		res.OracleRuns, res.TotalRemoved())
	for _, m := range res.Modules {
		if m.Skipped == "" && m.Module == "torch" {
			fmt.Printf("  torch: %d -> %d attributes (paper: 1414 -> 108 kept)\n",
				m.AttrsBefore, m.AttrsAfter)
		}
	}

	// Stage 4 — deploy both variants and compare cold starts.
	cfg := faas.DefaultConfig()
	before, err := faas.MeasureColdStart(res.Original, cfg)
	if err != nil {
		log.Fatal(err)
	}
	after, err := faas.MeasureColdStart(res.App, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold start: E2E %.2fs -> %.2fs (%.2fx), init %.2fs -> %.2fs, cost/100K $%.2f -> $%.2f\n",
		before.E2E.Seconds(), after.E2E.Seconds(),
		before.E2E.Seconds()/after.E2E.Seconds(),
		before.Init.Seconds(), after.Init.Seconds(),
		before.CostUSD*1e5, after.CostUSD*1e5)

	// Stage 5 — versus checkpoint/restore (§8.6): for a large ML app, C/R
	// restore beats re-import, but λ-trim shrinks the checkpoint, so the
	// combination wins.
	cmp, err := checkpoint.CompareInit(res.Original, res.App)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitialization variants (Figure 12):\n")
	fmt.Printf("  original          %8.2fs\n", cmp.Original.Seconds())
	fmt.Printf("  original + C/R    %8.2fs  (ckpt %.0f MB)\n", cmp.OriginalCR.Seconds(), cmp.OriginalCkptMB)
	fmt.Printf("  λ-trim            %8.2fs\n", cmp.Debloated.Seconds())
	fmt.Printf("  λ-trim + C/R      %8.2fs  (ckpt %.0f MB, %.0f%% smaller)\n",
		cmp.DebloatedCR.Seconds(), cmp.DebloatedCkptMB, 100*cmp.CkptSizeSavings)
}
