// costexplorer simulates a day of trace-driven traffic against one
// application and explores the cost landscape the paper's §8.6 maps out:
// how keep-alive policy changes the cold-start rate, what SnapStart's
// cache+restore fees add, and how much λ-trim claws back.
//
// Run with: go run ./examples/costexplorer [app]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/appcorpus"
	"repro/internal/checkpoint"
	"repro/internal/debloat"
	"repro/internal/faas"
	"repro/internal/trace"
)

func main() {
	appName := "spacy"
	if len(os.Args) > 1 {
		appName = os.Args[1]
	}
	app := appcorpus.MustBuild(appName)

	// Optimize the app once.
	res, err := debloat.Run(app, debloat.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	cfg := faas.DefaultConfig()
	orig, err := faas.MeasureColdStart(res.Original, cfg)
	if err != nil {
		log.Fatal(err)
	}
	trim, err := faas.MeasureColdStart(res.App, cfg)
	if err != nil {
		log.Fatal(err)
	}
	origCkpt, err := checkpoint.Take(res.Original)
	if err != nil {
		log.Fatal(err)
	}
	trimCkpt, err := checkpoint.Take(res.App)
	if err != nil {
		log.Fatal(err)
	}

	// Find a similar function in a synthetic Azure-like trace and replay
	// its arrivals.
	tr := trace.Generate(trace.DefaultGenConfig())
	fn := tr.NearestFunction(orig.PeakMB, orig.Exec.Seconds()*1000)
	fmt.Printf("app %s matched trace function #%d (%.0f MB, %.0f ms, %d invocations/day)\n\n",
		appName, fn.ID, fn.MemoryMB, fn.DurationMS, len(fn.Arrivals))

	pricing := cfg.Pricing
	fmt.Printf("%-12s %8s %8s | %12s %12s %12s\n",
		"keep-alive", "cold", "warm", "invoc $", "snapstart $", "with λ-trim $")
	for _, ka := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour} {
		pool := trace.SimulatePool(fn.Arrivals, orig.Exec, ka)

		costOf := func(inv *faas.Invocation, ckpt *checkpoint.Checkpoint) (float64, float64) {
			memMB := pricing.ConfigureMemory(inv.PeakMB)
			// With SnapStart, cold starts restore instead of re-importing,
			// so only execution is billed as duration.
			invocUSD := float64(pool.Invocations) * pricing.Cost(pricing.BillDuration(inv.Exec), memMB)
			snapUSD := ckpt.CacheCostUSD(tr.Period) + float64(pool.ColdStarts)*ckpt.RestoreCostUSD()
			return invocUSD, snapUSD
		}
		invO, snapO := costOf(orig, origCkpt)
		invT, snapT := costOf(trim, trimCkpt)
		fmt.Printf("%-12s %8d %8d | %12.4f %12.4f %12.4f\n",
			ka, pool.ColdStarts, pool.WarmStarts, invO, snapO, invT+snapT)
		_ = invT
	}

	fmt.Printf("\ncheckpoint: %.0f MB -> %.0f MB after λ-trim; restore %v -> %v\n",
		origCkpt.SizeMB, trimCkpt.SizeMB, origCkpt.RestoreTime(), trimCkpt.RestoreTime())
	fmt.Printf("plain cold start: init %v -> %v after λ-trim\n", orig.Init, trim.Init)
}
