// continuous demonstrates the paper's oracle-hardening loop (§5.4 + §9):
//
//  1. λ-trim debloats an app with the user's oracle set;
//  2. a differential fuzzer probes the optimized app against the original
//     and finds an input that only the original handles (a dynamically
//     accessed attribute that static analysis could not protect);
//  3. the failing input joins the oracle set and λ-trim re-runs — reusing
//     the previous reductions for every module that still validates, and
//     re-debloating only what must change;
//  4. the repaired app serves the once-failing input natively, with no
//     fallback invocation.
//
// Run with: go run ./examples/continuous
package main

import (
	"fmt"
	"log"

	"repro/internal/appcorpus"
	"repro/internal/debloat"
	"repro/internal/faas"
)

func main() {
	app := appcorpus.MustBuild("dna-visualization")

	// Round 1: debloat with the shipped oracle set.
	first, err := debloat.Run(app, debloat.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 1: removed %d attributes with %d oracle runs\n",
		first.TotalRemoved(), first.OracleRuns)

	// The trimmed app still works for normal traffic, but a rare input
	// triggers the fallback. Demonstrate via the platform.
	p := faas.New(faas.DefaultConfig())
	p.DeployWithFallback(first.App, first.Original)
	inv, err := p.Invoke(first.App.Name, map[string]any{"dna": "ATGC", "mode": "advanced"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rare input served by fallback: %v (E2E %v)\n", inv.FallbackUsed, inv.E2E)

	// Round 2: fuzz the optimized app against the original.
	report, err := debloat.Fuzz(first.Original, first.App, 400, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fuzzer: %d trials, %d diverging input(s)\n", report.Trials, len(report.Failing))
	if len(report.Failing) == 0 {
		log.Fatal("expected the fuzzer to find the divergence")
	}
	for _, tc := range report.Failing {
		fmt.Printf("  diverging event: %v\n", tc.Event)
	}

	// Round 3: extend the oracle and re-run continuously.
	second, err := debloat.Rerun(first, report.Failing, debloat.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 2 (rerun): removed %d attributes with %d oracle runs\n",
		second.TotalRemoved(), second.OracleRuns)

	// The repaired app handles the rare input without any fallback.
	p2 := faas.New(faas.DefaultConfig())
	p2.DeployWithFallback(second.App, second.Original)
	inv2, err := p2.Invoke(second.App.Name, map[string]any{"dna": "ATGC", "mode": "advanced"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rare input after rerun: fallback=%v, E2E %v, result %s\n",
		inv2.FallbackUsed, inv2.E2E, inv2.Result)
}
