// fleet debloats the entire 21-app benchmark corpus and prints fleet-wide
// savings — what an operator adopting λ-trim across a serverless estate
// would see.
//
// Run with: go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"repro/internal/appcorpus"
	"repro/internal/debloat"
	"repro/internal/faas"
	"repro/internal/stats"
)

func main() {
	cfg := faas.DefaultConfig()
	var speedups, memImps, costImps []float64
	var totalBefore, totalAfter float64

	fmt.Printf("%-18s %10s %10s %9s %9s %9s\n",
		"app", "init o->t", "", "speedup", "mem", "cost")
	for _, def := range appcorpus.Catalog() {
		app := def.Build()
		res, err := debloat.Run(app, debloat.DefaultConfig())
		if err != nil {
			log.Fatalf("%s: %v", def.Name, err)
		}
		before, err := faas.MeasureColdStart(res.Original, cfg)
		if err != nil {
			log.Fatal(err)
		}
		after, err := faas.MeasureColdStart(res.App, cfg)
		if err != nil {
			log.Fatal(err)
		}

		speedup := stats.Speedup(before.E2E.Seconds(), after.E2E.Seconds())
		memImp := stats.Improvement(before.PeakMB, after.PeakMB)
		costImp := stats.Improvement(before.CostUSD, after.CostUSD)
		speedups = append(speedups, speedup)
		memImps = append(memImps, memImp)
		costImps = append(costImps, costImp)
		totalBefore += before.CostUSD * 1e5
		totalAfter += after.CostUSD * 1e5

		fmt.Printf("%-18s %8.2fs -> %7.2fs %8.2fx %8.1f%% %8.1f%%\n",
			def.Name, before.Init.Seconds(), after.Init.Seconds(),
			speedup, 100*memImp, 100*costImp)
	}

	fmt.Printf("\nfleet summary over %d apps:\n", len(speedups))
	fmt.Printf("  mean E2E speedup      %.2fx (max %.2fx)\n", stats.Mean(speedups), stats.Max(speedups))
	fmt.Printf("  mean memory saving    %.1f%% (max %.1f%%)\n", 100*stats.Mean(memImps), 100*stats.Max(memImps))
	fmt.Printf("  mean cost saving      %.1f%% (max %.1f%%)\n", 100*stats.Mean(costImps), 100*stats.Max(costImps))
	fmt.Printf("  fleet bill / 100K invocations per app: $%.2f -> $%.2f\n", totalBefore, totalAfter)
}
