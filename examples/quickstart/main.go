// Quickstart: the paper's running example (§6.2, Figures 5-7).
//
// We build a tiny serverless app that uses a simplified torch library with
// six attributes, of which the app needs four. λ-trim's Delta Debugging
// removes MSELoss and SGD — and with SGD, the entire import of torch.optim
// disappears, exactly as in Figure 7 of the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/appspec"
	"repro/internal/debloat"
	"repro/internal/faas"
	"repro/internal/vfs"
)

func main() {
	app := buildApp()

	fmt.Println("=== original site-packages/torch/__init__.py ===")
	src, _ := app.Image.Read("site-packages/torch/__init__.py")
	fmt.Println(src)

	// Run the full λ-trim pipeline: static analysis, profiling, DD.
	res, err := debloat.Run(app, debloat.DefaultConfig())
	if err != nil {
		log.Fatalf("debloat: %v", err)
	}

	fmt.Println("=== debloated site-packages/torch/__init__.py ===")
	out, _ := res.App.Image.Read("site-packages/torch/__init__.py")
	fmt.Println(out)

	for _, m := range res.Modules {
		if m.Skipped != "" {
			continue
		}
		fmt.Printf("module %-14s attrs %d -> %d (removed: %v)\n",
			m.Module, m.AttrsBefore, m.AttrsAfter, m.Removed)
	}

	// Measure the cold-start effect on the platform simulator.
	cfg := faas.DefaultConfig()
	before, err := faas.MeasureColdStart(res.Original, cfg)
	if err != nil {
		log.Fatal(err)
	}
	after, err := faas.MeasureColdStart(res.App, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold start: init %v -> %v, memory %.1f -> %.1f MB, cost/100K $%.2f -> $%.2f\n",
		before.Init, after.Init, before.PeakMB, after.PeakMB,
		before.CostUSD*1e5, after.CostUSD*1e5)
}

// buildApp assembles the Figure 5 application and its simplified torch.
func buildApp() *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import torch

def handler(event, context):
    x = torch.tensor([1.0, 2.0])
    y = torch.tensor([3.0, 4.0])
    z = torch.view(torch.add(x, y), 2, 1)
    model = torch.nn.Linear(2, 1)
    model.weights = torch.tensor([1.0, 2.0])
    model.bias = torch.tensor([3.0])
    out = model(z)
    print(out.data)
    return out.data[0]
`)
	fs.Write("site-packages/torch/__init__.py", `
from torch.nn import Linear, MSELoss
from torch.optim import SGD
load_native(40, 16)

class tensor:
    def __init__(self, data):
        self.data = data

def add(t1, t2):
    out = []
    for pair in zip(t1.data, t2.data):
        out.append(pair[0] + pair[1])
    return tensor(out)

def view(t, dim1, dim2):
    return tensor(t.data)
`)
	fs.Write("site-packages/torch/nn/__init__.py", `
load_native(70, 28)

class Linear:
    def __init__(self, n_in, n_out):
        self.n_in = n_in
        self.n_out = n_out
        self.weights = None
        self.bias = None
    def __call__(self, t):
        total = 0.0
        for pair in zip(t.data, self.weights.data):
            total += pair[0] * pair[1]
        return type(t)([total + self.bias.data[0]])

class MSELoss:
    def __init__(self):
        load_native(10, 6)
`)
	fs.Write("site-packages/torch/optim/__init__.py", `
load_native(55, 22)

class SGD:
    def __init__(self, params, lr=0.01):
        self.params = params
        self.lr = lr
`)
	return &appspec.App{
		Name: "quickstart", Image: fs, Entry: "handler", Handler: "handler",
		Oracle: []appspec.TestCase{{Name: "default", Event: map[string]any{}}},
	}
}
