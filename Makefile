GO ?= go

.PHONY: check fmt vet build test bench experiments

## check: everything CI would run — formatting, vet, build, race-enabled tests
check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

experiments:
	$(GO) run ./cmd/experiments
