GO ?= go

.PHONY: check fmt vet build test bench bench-smoke race experiments monitor-smoke rollout-smoke engine-smoke fleet-smoke query-smoke chaos-smoke fuzz-smoke

## race: the race-detector sweep CI runs on the concurrency-bearing
## packages (parallel DD, the corpus scheduler, the shared snapshot cache)
race:
	$(GO) test -race -short ./internal/debloat/... ./internal/dd/... ./internal/experiments/...

## check: everything CI would run — formatting, vet, build, race-enabled
## tests, a short fuzz pass over the config parsers and the bytecode
## compiler, and the cross-engine golden determinism smoke
check: fmt vet build test fuzz-smoke engine-smoke

# fuzz-smoke: a few seconds of coverage-guided fuzzing on the parsers that
# take operator-written specs (SLOs, canary stages) and on the differential
# compile/eval harness (walker vs compiled engine must agree byte-for-byte
# on every observable). Seeds alone run in the normal test pass; this also
# explores.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -fuzz FuzzParseSLOs -fuzztime $(FUZZTIME) -run xxx ./internal/obs/monitor
	$(GO) test -fuzz FuzzParseStages -fuzztime $(FUZZTIME) -run xxx ./internal/rollout
	$(GO) test -fuzz FuzzCompileEval -fuzztime $(FUZZTIME) -run xxx ./internal/pyruntime
	$(GO) test -fuzz FuzzParseQuery -fuzztime $(FUZZTIME) -run xxx ./internal/obs/query
	$(GO) test -fuzz FuzzParseIncidents -fuzztime $(FUZZTIME) -run xxx ./internal/chaos

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# bench: full benchmark sweep, 3 samples each, machine-readable output in
# BENCH_<date>.json. Recover a benchstat-ready table with:
#   jq -r 'select(.Action=="output").Output' BENCH_<date>.json | benchstat -
BENCH_OUT ?= BENCH_$(shell date +%Y-%m-%d).json
bench:
	$(GO) test -bench . -benchmem -benchtime 1x -count 3 -run xxx -json . > $(BENCH_OUT)
	@echo "benchmark log written to $(BENCH_OUT)"

# bench-smoke: one fast iteration of the cheap benchmarks (CI).
bench-smoke:
	$(GO) test -short -bench . -benchtime 1x -run xxx .

# monitor-smoke: golden-output check of the monitored replay — the same
# seeded driver must render byte-identically across two fresh processes,
# and the telemetry exporters must produce the same artifact bytes.
MONITOR_SMOKE_DIR ?= monitor-smoke-out
monitor-smoke:
	@mkdir -p $(MONITOR_SMOKE_DIR)
	$(GO) run ./cmd/experiments -trace $(MONITOR_SMOKE_DIR)/trace.json \
		-metrics $(MONITOR_SMOKE_DIR)/metrics.json \
		-flame $(MONITOR_SMOKE_DIR)/flame.folded \
		-openmetrics $(MONITOR_SMOKE_DIR)/openmetrics.txt \
		monitor > $(MONITOR_SMOKE_DIR)/monitor.txt
	$(GO) run ./cmd/experiments -trace $(MONITOR_SMOKE_DIR)/trace2.json \
		-metrics $(MONITOR_SMOKE_DIR)/metrics2.json \
		-flame $(MONITOR_SMOKE_DIR)/flame2.folded \
		-openmetrics $(MONITOR_SMOKE_DIR)/openmetrics2.txt \
		monitor > $(MONITOR_SMOKE_DIR)/monitor2.txt
	cmp $(MONITOR_SMOKE_DIR)/monitor.txt $(MONITOR_SMOKE_DIR)/monitor2.txt
	cmp $(MONITOR_SMOKE_DIR)/trace.json $(MONITOR_SMOKE_DIR)/trace2.json
	cmp $(MONITOR_SMOKE_DIR)/metrics.json $(MONITOR_SMOKE_DIR)/metrics2.json
	cmp $(MONITOR_SMOKE_DIR)/flame.folded $(MONITOR_SMOKE_DIR)/flame2.folded
	cmp $(MONITOR_SMOKE_DIR)/openmetrics.txt $(MONITOR_SMOKE_DIR)/openmetrics2.txt
	@echo "monitor-smoke: byte-identical across runs"

# rollout-smoke: golden-output check of the closed-loop deployment replay —
# canary events, breaker transitions, heal timings, cost table, and the
# rollout OpenMetrics exposition must be byte-identical across two fresh
# processes.
ROLLOUT_SMOKE_DIR ?= rollout-smoke-out
rollout-smoke:
	@mkdir -p $(ROLLOUT_SMOKE_DIR)
	$(GO) run ./cmd/experiments rollout > $(ROLLOUT_SMOKE_DIR)/rollout.txt
	$(GO) run ./cmd/experiments rollout > $(ROLLOUT_SMOKE_DIR)/rollout2.txt
	cmp $(ROLLOUT_SMOKE_DIR)/rollout.txt $(ROLLOUT_SMOKE_DIR)/rollout2.txt
	@echo "rollout-smoke: byte-identical across runs"

# engine-smoke: golden determinism across execution engines — the debloating
# sweep must render byte-identically whether oracle programs run on the
# compiled closure streams or the reference AST walker, and regardless of
# the parallel-debloat worker count. cmp fails the job on the first diff.
ENGINE_SMOKE_DIR ?= engine-smoke-out
engine-smoke:
	@mkdir -p $(ENGINE_SMOKE_DIR)
	$(GO) run ./cmd/experiments -engine walker table2 fig8 > $(ENGINE_SMOKE_DIR)/walker.txt
	$(GO) run ./cmd/experiments -engine compiled table2 fig8 > $(ENGINE_SMOKE_DIR)/compiled.txt
	$(GO) run ./cmd/experiments -engine compiled -workers 1 table2 fig8 > $(ENGINE_SMOKE_DIR)/compiled-w1.txt
	cmp $(ENGINE_SMOKE_DIR)/walker.txt $(ENGINE_SMOKE_DIR)/compiled.txt
	cmp $(ENGINE_SMOKE_DIR)/compiled.txt $(ENGINE_SMOKE_DIR)/compiled-w1.txt
	@echo "engine-smoke: byte-identical across engines and worker counts"

# fleet-smoke: worker-count determinism of the sharded fleet replay — the
# same synthetic fleet day must produce byte-identical report, OpenMetrics
# exposition, and flamegraph at 1 and 4 worker shards (the engine's core
# contract; see DESIGN.md §13).
FLEET_SMOKE_DIR ?= fleet-smoke-out
fleet-smoke:
	@mkdir -p $(FLEET_SMOKE_DIR)
	$(GO) run ./cmd/lambdatrim -fleet -fleet-functions 3000 -fleet-workers 1 \
		-openmetrics $(FLEET_SMOKE_DIR)/openmetrics-w1.txt \
		-flame $(FLEET_SMOKE_DIR)/flame-w1.folded > $(FLEET_SMOKE_DIR)/fleet-w1.txt
	$(GO) run ./cmd/lambdatrim -fleet -fleet-functions 3000 -fleet-workers 4 \
		-openmetrics $(FLEET_SMOKE_DIR)/openmetrics-w4.txt \
		-flame $(FLEET_SMOKE_DIR)/flame-w4.folded > $(FLEET_SMOKE_DIR)/fleet-w4.txt
	cmp $(FLEET_SMOKE_DIR)/fleet-w1.txt $(FLEET_SMOKE_DIR)/fleet-w4.txt
	cmp $(FLEET_SMOKE_DIR)/openmetrics-w1.txt $(FLEET_SMOKE_DIR)/openmetrics-w4.txt
	cmp $(FLEET_SMOKE_DIR)/flame-w1.folded $(FLEET_SMOKE_DIR)/flame-w4.folded
	@echo "fleet-smoke: byte-identical across worker shards"

# query-smoke: worker-count determinism of the query surface — a canned
# query set (selectors, rules, label matchers, ratios, a range query) and
# the exemplar-annotated exposition must produce byte-identical JSON and
# OpenMetrics at 1 and 4 worker shards (see DESIGN.md §14).
QUERY_SMOKE_DIR ?= query-smoke-out
QUERY_SMOKE_RULES = fleet:cost_usd:sum5m = sum(cost.usd[5m]); fleet:req:rate5m = rate(req.total[5m])
query-smoke:
	@mkdir -p $(QUERY_SMOKE_DIR)
	$(GO) run ./cmd/lambdatrim -fleet-functions 3000 -fleet-workers 1 \
		-rules '$(QUERY_SMOKE_RULES)' \
		-query 'cost.usd / req.total' \
		-query 'sum(cost.usd{phase="init"}[24h]) / sum(cost.usd[24h])' \
		-query 'rate(req.total{arm="debloated"}[6h])' \
		-query 'fleet:cost_usd:sum5m' \
		-query 'max(fleet:req:rate5m[24h])' \
		-openmetrics $(QUERY_SMOKE_DIR)/openmetrics-w1.txt > $(QUERY_SMOKE_DIR)/query-w1.json
	$(GO) run ./cmd/lambdatrim -fleet-functions 3000 -fleet-workers 4 \
		-rules '$(QUERY_SMOKE_RULES)' \
		-query 'cost.usd / req.total' \
		-query 'sum(cost.usd{phase="init"}[24h]) / sum(cost.usd[24h])' \
		-query 'rate(req.total{arm="debloated"}[6h])' \
		-query 'fleet:cost_usd:sum5m' \
		-query 'max(fleet:req:rate5m[24h])' \
		-openmetrics $(QUERY_SMOKE_DIR)/openmetrics-w4.txt > $(QUERY_SMOKE_DIR)/query-w4.json
	$(GO) run ./cmd/lambdatrim -fleet-functions 3000 -fleet-workers 1 \
		-rules '$(QUERY_SMOKE_RULES)' -query 'fleet:req:rate5m' \
		-query-step 4h > $(QUERY_SMOKE_DIR)/range-w1.json
	$(GO) run ./cmd/lambdatrim -fleet-functions 3000 -fleet-workers 4 \
		-rules '$(QUERY_SMOKE_RULES)' -query 'fleet:req:rate5m' \
		-query-step 4h > $(QUERY_SMOKE_DIR)/range-w4.json
	cmp $(QUERY_SMOKE_DIR)/query-w1.json $(QUERY_SMOKE_DIR)/query-w4.json
	cmp $(QUERY_SMOKE_DIR)/range-w1.json $(QUERY_SMOKE_DIR)/range-w4.json
	cmp $(QUERY_SMOKE_DIR)/openmetrics-w1.txt $(QUERY_SMOKE_DIR)/openmetrics-w4.txt
	grep -q 'span_id="' $(QUERY_SMOKE_DIR)/openmetrics-w1.txt
	@echo "query-smoke: byte-identical across worker shards"

# chaos-smoke: worker-count determinism of the chaos replay — the canonical
# incident day over a 4-arm fleet must produce byte-identical report,
# resilience scorecard, and OpenMetrics exposition at 1 and 4 worker shards,
# and the availability SLO must actually page during the incidents (the
# alert log is part of the report, so the cmp covers it; see DESIGN.md §15).
CHAOS_SMOKE_DIR ?= chaos-smoke-out
chaos-smoke:
	@mkdir -p $(CHAOS_SMOKE_DIR)
	$(GO) run ./cmd/lambdatrim -chaos default -fleet-functions 3000 -fleet-workers 1 \
		-scorecard $(CHAOS_SMOKE_DIR)/scorecard-w1.txt \
		-openmetrics $(CHAOS_SMOKE_DIR)/openmetrics-w1.txt > $(CHAOS_SMOKE_DIR)/chaos-w1.txt
	$(GO) run ./cmd/lambdatrim -chaos default -fleet-functions 3000 -fleet-workers 4 \
		-scorecard $(CHAOS_SMOKE_DIR)/scorecard-w4.txt \
		-openmetrics $(CHAOS_SMOKE_DIR)/openmetrics-w4.txt > $(CHAOS_SMOKE_DIR)/chaos-w4.txt
	cmp $(CHAOS_SMOKE_DIR)/chaos-w1.txt $(CHAOS_SMOKE_DIR)/chaos-w4.txt
	cmp $(CHAOS_SMOKE_DIR)/scorecard-w1.txt $(CHAOS_SMOKE_DIR)/scorecard-w4.txt
	cmp $(CHAOS_SMOKE_DIR)/openmetrics-w1.txt $(CHAOS_SMOKE_DIR)/openmetrics-w4.txt
	grep -q 'FIRING' $(CHAOS_SMOKE_DIR)/chaos-w1.txt
	grep -q 'resilience scorecard' $(CHAOS_SMOKE_DIR)/chaos-w1.txt
	@echo "chaos-smoke: byte-identical across worker shards"

experiments:
	$(GO) run ./cmd/experiments
