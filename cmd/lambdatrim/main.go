// Command lambdatrim drives the λ-trim pipeline on one corpus application:
// static analysis, cost profiling, Delta-Debugging debloat, and a
// before/after cold-start report.
//
// Usage:
//
//	lambdatrim <app> [-k N] [-scoring combined|time|memory|random] [-granularity attr|stmt]
//	lambdatrim -all [-workers N]
//	lambdatrim -dir path/to/app [-out path/to/optimized] ...
//	lambdatrim -list
//
// With -all, every corpus application is debloated under the default
// configuration on a bounded worker pool (-workers, default GOMAXPROCS) and
// a before/after cold-start summary table is printed. Parallelism only
// changes wall-clock time; all simulated results are schedule-independent.
//
// With -dir, the application is loaded from a real directory (handler.py +
// site-packages/ + oracle.json, the paper's input format); -out exports the
// optimized image for deployment.
//
// With -trace/-events/-metrics/-trace-summary, the run records a
// deterministic span tree and metrics over simulated time — the pipeline
// stages (analyze, profile, per-module DD) and every platform measurement
// (deploys, cold/warm invocations) — and exports it as Chrome trace-event
// JSON, a JSONL event log, a metrics snapshot, or a text digest.
//
// Example:
//
//	lambdatrim resnet -k 20
//	lambdatrim -dir ./myapp -out ./myapp-trimmed
//	lambdatrim markdown -trace t.json -metrics m.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/appcorpus"
	"repro/internal/appspec"
	"repro/internal/chaos"
	"repro/internal/debloat"
	"repro/internal/experiments"
	"repro/internal/faas"
	"repro/internal/fleet"
	"repro/internal/imageio"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/obs/query"
	"repro/internal/obs/serve"
	"repro/internal/powertune"
	"repro/internal/profiler"
	"repro/internal/pyruntime"
)

func main() {
	fs := flag.NewFlagSet("lambdatrim", flag.ExitOnError)
	k := fs.Int("k", 20, "number of top-ranked modules to debloat")
	scoring := fs.String("scoring", "combined", "profiler scoring: combined|time|memory|random")
	granularity := fs.String("granularity", "attr", "DD granularity: attr|stmt")
	workers := fs.Int("workers", 1, "concurrent oracle evaluations per DD round, default 1 (with -all and no explicit -workers, the corpus pool sizes itself to GOMAXPROCS instead)")
	engine := fs.String("engine", "compiled", "pyruntime execution engine: compiled|walker (both produce byte-identical simulated results)")
	all := fs.Bool("all", false, "debloat the entire corpus in parallel and print a summary table")
	dir := fs.String("dir", "", "load the application from this directory instead of the corpus")
	out := fs.String("out", "", "export the optimized image to this directory")
	tune := fs.Bool("tune", false, "power-tune memory configurations before and after debloating")
	faults := fs.Bool("faults", false, "replay a faulted trace workload comparing original, debloated, and fallback deployments")
	faultSeed := fs.Int64("fault-seed", 7, "seed for the trace generator and fault injector (with -faults/-monitor/-rollout) and for the fleet population (with -fleet)")
	monitorFlag := fs.Bool("monitor", false, "replay a seeded trace workload under SLO burn-rate monitoring, original vs debloated")
	rolloutFlag := fs.Bool("rollout", false, "replay a seeded trace through the closed-loop deployment controller: canary, breaker, self-heal — vs static fallback and an oracle-clean baseline")
	fleetFlag := fs.Bool("fleet", false, "replay a synthetic corpus-shaped fleet day through the sharded virtual-time engine and print the fleet report (standalone; no app argument)")
	fleetFunctions := fs.Int("fleet-functions", 10000, "fleet population size (with -fleet/-chaos)")
	fleetWorkers := fs.Int("fleet-workers", 0, "fleet worker shards, 0 = GOMAXPROCS (with -fleet/-chaos; wall-clock only — report, scorecard, and every exposition are byte-identical at any count)")
	chaosSpec := fs.String("chaos", "", "replay the fleet day through the chaos engine: a semicolon-separated incident spec (e.g. 'zone-outage@9h+25m,zone=1'), @file to load one, or 'default' for the canonical incident day (implies -fleet; the report gains a resilience scorecard)")
	chaosMit := fs.String("chaos-mitigations", "all", "graceful-degradation mechanisms with -chaos: all, none, or a comma list of hedge,shed,breaker,budget")
	scorecardFile := fs.String("scorecard", "", "also write the resilience scorecard alone to this file (with -chaos)")
	var queries multiFlag
	fs.Var(&queries, "query", "evaluate an mql query over the fleet replay and print one JSON line (repeatable; implies -fleet and suppresses the text report)")
	queryStep := fs.Duration("query-step", 0, "evaluate -query as a range query at this step instead of a single instant")
	rulesFlag := fs.String("rules", "", "recording rules for the fleet replay, 'name = expr' separated by ';' (or @file to load from a file); evaluated incrementally per shard, byte-identical at any -fleet-workers")
	spanFlag := fs.String("span", "", "print the span subtree behind this exemplar span ID after the fleet replay (implies -fleet)")
	serveAddr := fs.String("serve", "", "after the fleet replay, serve /metrics, /query, /alerts, /dashboard, and /span on this address (implies -fleet)")
	serveFrameDelay := fs.Duration("serve-frame-delay", time.Second, "pacing between SSE dashboard frames on /dashboard")
	slo := fs.String("slo", "", "comma-separated SLO spec for -monitor/-fleet, e.g. p95=800ms,err=2%,costinv=2e-7 (default: thresholds derived from cold-start probes, or the fleet defaults)")
	list := fs.Bool("list", false, "list corpus applications and exit")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file of the run (pipeline + platform spans over sim-time)")
	events := fs.String("events", "", "write the JSONL event log of the run")
	metrics := fs.String("metrics", "", "write a JSON metrics snapshot of the run")
	flame := fs.String("flame", "", "write a folded-stack flamegraph of the run (speedscope/flamegraph.pl)")
	openmetrics := fs.String("openmetrics", "", "write an OpenMetrics text exposition of the run's metrics")
	traceSummary := fs.Bool("trace-summary", false, "print a text digest of the recorded trace (top spans, phase percentiles)")

	args := os.Args[1:]
	var appName string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		appName = args[0]
		args = args[1:]
	}
	fs.Parse(args)

	// A non-positive worker count would otherwise flow into the DD scheduler
	// and the -all corpus pool; reject it here so every misuse fails the same
	// way instead of silently degrading to sequential.
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "-workers must be >= 1 (got %d)\n", *workers)
		os.Exit(2)
	}
	eng, err := pyruntime.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-engine: %v\n", err)
		os.Exit(2)
	}
	pyruntime.SetDefaultEngine(eng)

	if len(queries) > 0 || *rulesFlag != "" || *spanFlag != "" || *serveAddr != "" || *chaosSpec != "" {
		*fleetFlag = true // the query and chaos surfaces read a fleet replay
	}
	if *fleetFlag {
		if *fleetFunctions < 1 {
			fmt.Fprintf(os.Stderr, "-fleet-functions must be >= 1 (got %d)\n", *fleetFunctions)
			os.Exit(2)
		}
		if *fleetWorkers < 0 {
			fmt.Fprintf(os.Stderr, "-fleet-workers must be >= 0, 0 meaning GOMAXPROCS (got %d)\n", *fleetWorkers)
			os.Exit(2)
		}
		os.Exit(runFleet(fleetOptions{
			functions:    *fleetFunctions,
			workers:      *fleetWorkers,
			seed:         *faultSeed,
			sloSpec:      *slo,
			chaos:        *chaosSpec,
			mitigations:  *chaosMit,
			scorecard:    *scorecardFile,
			queries:      queries,
			queryStep:    *queryStep,
			rules:        *rulesFlag,
			span:         *spanFlag,
			serve:        *serveAddr,
			frameDelay:   *serveFrameDelay,
			trace:        *trace,
			events:       *events,
			metrics:      *metrics,
			flame:        *flame,
			openmetrics:  *openmetrics,
			traceSummary: *traceSummary,
		}))
	}

	if *all {
		corpusWorkers := runtime.GOMAXPROCS(0)
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				corpusWorkers = *workers
			}
		})
		var tr *obs.Tracer
		if *trace != "" || *events != "" || *metrics != "" || *flame != "" || *openmetrics != "" || *traceSummary {
			tr = obs.New()
		}
		code := runCorpus(corpusWorkers, tr)
		if tr != nil && code == 0 {
			if *traceSummary {
				fmt.Println()
				fmt.Print(tr.Summary())
			}
			if err := tr.WriteFiles(*trace, *events, *metrics, *flame, *openmetrics); err != nil {
				fmt.Fprintln(os.Stderr, err)
				code = 1
			}
		}
		os.Exit(code)
	}

	if *list || (appName == "" && *dir == "") {
		fmt.Println("corpus applications:")
		for _, d := range appcorpus.Catalog() {
			fmt.Printf("  %-18s (%s; import %.2fs, exec %.2fs)\n", d.Name, d.Source, d.ImportS, d.ExecS)
		}
		if appName == "" && *dir == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var app *appspec.App
	if *dir != "" {
		loaded, err := imageio.LoadDir(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading %s: %v\n", *dir, err)
			os.Exit(1)
		}
		app = loaded
	} else {
		app = appcorpus.MustBuild(appName)
		appName = app.Name
	}
	if appName == "" {
		appName = app.Name
	}
	cfg := debloat.DefaultConfig()
	cfg.K = *k
	switch *scoring {
	case "combined":
		cfg.Scoring = profiler.Combined
	case "time":
		cfg.Scoring = profiler.TimeOnly
	case "memory":
		cfg.Scoring = profiler.MemoryOnly
	case "random":
		cfg.Scoring = profiler.Random
	default:
		fmt.Fprintf(os.Stderr, "unknown scoring %q\n", *scoring)
		os.Exit(2)
	}
	if *granularity == "stmt" {
		cfg.Granularity = debloat.StmtGranularity
	}
	cfg.Workers = *workers
	cfg.Engine = eng

	// One tracer spans the whole run: the debloat pipeline on its virtual
	// timeline, then every platform measurement on the platform clock.
	var tr *obs.Tracer
	if *trace != "" || *events != "" || *metrics != "" || *flame != "" || *openmetrics != "" || *traceSummary {
		tr = obs.New()
	}
	cfg.Tracer = tr

	fmt.Printf("λ-trim: debloating %s (K=%d, scoring=%s, granularity=%s)\n\n",
		appName, cfg.K, cfg.Scoring, cfg.Granularity)

	res, err := debloat.Run(app, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "debloat failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("profiler ranking (top-K by marginal monetary cost):")
	for i, mp := range res.Profile.TopK(cfg.K) {
		fmt.Printf("  %2d. %-28s t=%8.3fs  m=%7.2fMB  score=%.4f\n",
			i+1, mp.Name, mp.ImportTime.Seconds(), mp.MemoryMB, mp.Score)
	}

	fmt.Println("\nper-module debloating results:")
	for _, m := range res.Modules {
		if m.Skipped != "" {
			fmt.Printf("  %-28s skipped (%s)\n", m.Module, m.Skipped)
			continue
		}
		fmt.Printf("  %-28s attrs %4d -> %4d  (removed %4d; %d oracle tests)\n",
			m.Module, m.AttrsBefore, m.AttrsAfter, len(m.Removed), m.DD.Tests)
	}
	fmt.Printf("\ndebloating used %d oracle runs, simulated time %.0fs\n",
		res.OracleRuns, res.DebloatTime.Seconds())

	platform := faas.DefaultConfig()
	platform.Tracer = tr
	before, err := faas.MeasureColdStart(res.Original, platform)
	if err != nil {
		fmt.Fprintf(os.Stderr, "measuring original: %v\n", err)
		os.Exit(1)
	}
	after, err := faas.MeasureColdStart(res.App, platform)
	if err != nil {
		fmt.Fprintf(os.Stderr, "measuring optimized: %v\n", err)
		os.Exit(1)
	}
	warmBefore, err := faas.MeasureWarmStart(res.Original, platform)
	if err != nil {
		fmt.Fprintf(os.Stderr, "measuring original warm: %v\n", err)
		os.Exit(1)
	}
	warmAfter, err := faas.MeasureWarmStart(res.App, platform)
	if err != nil {
		fmt.Fprintf(os.Stderr, "measuring optimized warm: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\ncold-start comparison (original -> optimized):")
	fmt.Printf("  function init  %8.3fs -> %8.3fs\n", before.Init.Seconds(), after.Init.Seconds())
	fmt.Printf("  E2E latency    %8.3fs -> %8.3fs  (%.2fx)\n",
		before.E2E.Seconds(), after.E2E.Seconds(), before.E2E.Seconds()/after.E2E.Seconds())
	fmt.Printf("  warm E2E       %8.3fs -> %8.3fs\n", warmBefore.E2E.Seconds(), warmAfter.E2E.Seconds())
	fmt.Printf("  memory         %7.1fMB -> %7.1fMB\n", before.PeakMB, after.PeakMB)
	fmt.Printf("  cost / 100K    %8.2f$ -> %8.2f$\n", before.CostUSD*1e5, after.CostUSD*1e5)

	if *tune {
		// λ-trim's footprint reduction unlocks smaller, cheaper memory
		// configurations — power-tune both variants to quantify it.
		for _, variant := range []struct {
			label string
			app   *appspec.App
		}{{"original", res.Original}, {"optimized", res.App}} {
			sweep, err := powertune.Sweep(variant.app, platform, powertune.DefaultLadder(), 0.7)
			if err != nil {
				fmt.Fprintf(os.Stderr, "power tuning %s: %v\n", variant.label, err)
				os.Exit(1)
			}
			fmt.Printf("\n[%s] %s", variant.label, sweep.Render())
		}
	}

	if *faults {
		// Reliability replay: OOM enforcement, timeouts, throttling, and
		// injected transient faults over a bursty trace workload, with
		// client-side retries — original vs. debloated vs. fallback.
		rcfg := experiments.DefaultReliabilityConfig()
		rcfg.App = appName
		rcfg.Seed = *faultSeed
		rel, err := experiments.ReliabilityCompare(res.Original, res.App, platform, rcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reliability replay: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(rel.Render())
	}

	if *monitorFlag {
		// SLO-monitored replay: the seeded trace workload against the
		// original and debloated deployments under identical objectives,
		// with burn-rate alerts and per-phase cost attribution.
		mcfg := experiments.DefaultMonitorConfig()
		mcfg.App = appName
		mcfg.Seed = *faultSeed
		if *slo != "" {
			slos, err := monitor.ParseSLOs(*slo)
			if err != nil {
				fmt.Fprintf(os.Stderr, "parsing -slo: %v\n", err)
				os.Exit(2)
			}
			mcfg.SLOs = slos
		}
		mon, err := experiments.MonitorCompare(res.Original, res.App, res.Profile, platform, mcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "monitored replay: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(mon.Render())
	}

	if *rolloutFlag {
		// Closed-loop rollout replay: the app is deployed as the storm
		// member — mid-trace its traffic shifts to the advanced mode, and
		// the controller's canary/breaker/self-heal loop competes with the
		// paper's static fallback wrapper and an oracle-clean baseline.
		ocfg := experiments.DefaultRolloutConfig()
		ocfg.StormApps = []string{appName}
		ocfg.CleanApps = nil
		ocfg.Seed = *faultSeed
		roll, err := experiments.RolloutCompare([]*debloat.Result{res}, nil, platform, cfg, ocfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rollout replay: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(roll.Render())
	}

	if *out != "" {
		if err := imageio.SaveDir(res.App, *out); err != nil {
			fmt.Fprintf(os.Stderr, "exporting optimized image: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\noptimized image exported to %s\n", *out)
	}

	if tr != nil {
		if *traceSummary {
			fmt.Println()
			fmt.Print(tr.Summary())
		}
		if err := tr.WriteFiles(*trace, *events, *metrics, *flame, *openmetrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

type fleetOptions struct {
	functions    int
	workers      int
	seed         int64
	sloSpec      string
	chaos        string
	mitigations  string
	scorecard    string
	queries      []string
	queryStep    time.Duration
	rules        string
	span         string
	serve        string
	frameDelay   time.Duration
	trace        string
	events       string
	metrics      string
	flame        string
	openmetrics  string
	traceSummary bool
}

// runFleet is the -fleet mode: generate a corpus-shaped synthetic
// population (half original, half debloated deployments), replay its day
// through the sharded fleet engine, and print the merged report. The
// telemetry flags reuse the run's exporters: -openmetrics gets the fleet
// exposition directly, while -trace/-events/-metrics/-flame export the
// replay's bounded span tree and merged counters through a tracer. The
// query surface (-query/-rules/-span/-serve) turns on labeled series and
// reads the same merged result: every output stays byte-identical at any
// -fleet-workers count.
func runFleet(opt fleetOptions) int {
	pc := fleet.DefaultPopConfig()
	pc.Functions = opt.functions
	pc.Seed = opt.seed

	querying := len(opt.queries) > 0 || opt.rules != "" || opt.span != "" || opt.serve != ""
	cfg := fleet.Config{
		Workers:        opt.workers,
		Period:         pc.Period,
		SLOs:           fleet.DefaultSLOs(),
		DashboardEvery: 4 * time.Hour,
		Seed:           pc.Seed,
		Pricing:        pc.Pricing,
		LabelSeries:    querying,
	}
	if opt.chaos != "" {
		spec := opt.chaos
		if strings.HasPrefix(spec, "@") {
			data, err := os.ReadFile(spec[1:])
			if err != nil {
				fmt.Fprintf(os.Stderr, "reading -chaos: %v\n", err)
				return 2
			}
			spec = strings.TrimSpace(string(data))
		}
		var incidents []chaos.Incident
		if spec == "default" {
			incidents = chaos.DefaultIncidentDay()
		} else {
			var err error
			incidents, err = chaos.ParseIncidents(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "parsing -chaos: %v\n", err)
				return 2
			}
		}
		mit, err := chaos.ParseMitigations(opt.mitigations)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parsing -chaos-mitigations: %v\n", err)
			return 2
		}
		// Field the wrapper arms alongside the paper's two, so the chaos
		// day exercises the fallback double-bill and the breaker in one
		// replay.
		pc.ArmMix = []fleet.ArmShare{
			{Arm: chaos.ArmDebloated, Frac: 0.25},
			{Arm: chaos.ArmFallback, Frac: 0.25},
			{Arm: chaos.ArmBreaker, Frac: 0.25},
		}
		cfg.Chaos = &chaos.Config{Seed: pc.Seed, Incidents: incidents, Mitigations: mit}
		cfg.SLOs = fleet.DefaultChaosSLOs()
	}
	if opt.sloSpec != "" {
		slos, err := monitor.ParseSLOs(opt.sloSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parsing -slo: %v\n", err)
			return 2
		}
		cfg.SLOs = slos
	}
	if opt.rules != "" {
		src := opt.rules
		if strings.HasPrefix(src, "@") {
			data, err := os.ReadFile(src[1:])
			if err != nil {
				fmt.Fprintf(os.Stderr, "reading -rules: %v\n", err)
				return 2
			}
			src = string(data)
		}
		rules, err := query.ParseRules(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parsing -rules: %v\n", err)
			return 2
		}
		cfg.Rules = rules
	}

	res, err := fleet.Replay(cfg, fleet.GeneratePopulation(pc, nil))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet replay: %v\n", err)
		return 1
	}

	// -query suppresses the text report: stdout is then exactly one JSON
	// line per query, suitable for golden comparison with cmp.
	if len(opt.queries) > 0 {
		eng := res.QueryEngine()
		for _, q := range opt.queries {
			var out string
			var err error
			if opt.queryStep > 0 {
				out, err = eng.RangeJSON(q, 0, -1, opt.queryStep)
			} else {
				out, err = eng.InstantJSON(q, -1)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "query %q: %v\n", q, err)
				return 2
			}
			fmt.Println(out)
		}
	} else {
		fmt.Print(res.Render())
	}

	if opt.openmetrics != "" {
		if err := os.WriteFile(opt.openmetrics, res.OpenMetrics(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if opt.scorecard != "" {
		if res.Chaos == nil {
			fmt.Fprintln(os.Stderr, "-scorecard needs -chaos (no chaos replay ran)")
			return 2
		}
		if err := os.WriteFile(opt.scorecard, []byte(res.Scorecard()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	var tr *obs.Tracer
	if opt.span != "" || opt.serve != "" || opt.trace != "" || opt.events != "" ||
		opt.metrics != "" || opt.flame != "" || opt.traceSummary {
		tr = obs.New()
		res.EmitSpans(tr)
	}
	if opt.span != "" {
		s := tr.FindSpan(opt.span)
		if s == nil {
			fmt.Fprintf(os.Stderr, "no span with id %s (IDs ride the exemplar annotations in -openmetrics output)\n", opt.span)
			return 1
		}
		fmt.Print(s.Subtree())
	}
	if opt.traceSummary {
		fmt.Println()
		fmt.Print(tr.Summary())
	}
	if tr != nil {
		if err := tr.WriteFiles(opt.trace, opt.events, opt.metrics, opt.flame, ""); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	if opt.serve != "" {
		site := &serve.Site{
			OpenMetrics: res.OpenMetrics,
			Engine:      res.QueryEngine(),
			AlertLog:    res.AlertLog(),
			Frames:      res.Frames,
			FindSpan:    tr.FindSpan,
			FrameDelay:  opt.frameDelay,
		}
		fmt.Fprintf(os.Stderr, "serving fleet replay on %s (/metrics /query /alerts /dashboard /span)\n", opt.serve)
		if err := site.ListenAndServe(opt.serve); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// runCorpus is the -all mode: debloat the whole corpus on a worker pool and
// print a before/after cold-start summary in Table 1 order.
func runCorpus(workers int, tr *obs.Tracer) int {
	suite := experiments.NewSuite()
	suite.Platform.Tracer = tr

	fmt.Printf("λ-trim: debloating the full corpus (%d workers, default configuration)\n\n", workers)
	if err := suite.DebloatAll(workers); err != nil {
		fmt.Fprintf(os.Stderr, "corpus debloat: %v\n", err)
		return 1
	}

	fmt.Printf("%-18s %9s %9s %10s %10s %9s %9s\n",
		"Application", "Init", "→Init", "ColdE2E", "→ColdE2E", "Mem(MB)", "→Mem(MB)")
	for _, name := range experiments.AllNames() {
		res, err := suite.Debloat(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		before, err := faas.MeasureColdStart(res.Original, suite.Platform)
		if err != nil {
			fmt.Fprintf(os.Stderr, "measuring %s original: %v\n", name, err)
			return 1
		}
		after, err := faas.MeasureColdStart(res.App, suite.Platform)
		if err != nil {
			fmt.Fprintf(os.Stderr, "measuring %s optimized: %v\n", name, err)
			return 1
		}
		fmt.Printf("%-18s %8.2fs %8.2fs %9.2fs %9.2fs %9.1f %9.1f\n",
			name,
			before.Init.Seconds(), after.Init.Seconds(),
			before.E2E.Seconds(), after.E2E.Seconds(),
			before.PeakMB, after.PeakMB)
	}
	return 0
}
