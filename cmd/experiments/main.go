// Command experiments regenerates the paper's tables and figures as text.
//
// Usage:
//
//	experiments [flags] [target ...]
//	experiments -list
//
// Targets are listed by -list; with no target (or "all") every driver runs
// in presentation order (a few seconds: the corpus is debloated once and
// reused across figures). Flags must precede targets.
//
// With -trace/-events/-metrics, the run records deterministic telemetry
// over simulated time and writes it to the given files (Chrome trace-event
// JSON, JSONL event log, and a metrics snapshot respectively).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

type renderer interface{ Render() string }

// drivers maps each target to its suite method, in presentation order.
// This slice is the single source of truth: the usage string, -list, and
// the default "all" set all derive from it.
var drivers = []struct {
	name string
	desc string
	run  func(*experiments.Suite) (renderer, error)
}{
	{"fig1", "cold/warm start latency anatomy", func(s *experiments.Suite) (renderer, error) { return s.Figure1() }},
	{"table1", "corpus applications", func(s *experiments.Suite) (renderer, error) { return s.Table1() }},
	{"fig2", "cost breakdown per application", func(s *experiments.Suite) (renderer, error) { return s.Figure2() }},
	{"fig8", "initialization time reduction", func(s *experiments.Suite) (renderer, error) { return s.Figure8() }},
	{"table2", "debloating outcomes", func(s *experiments.Suite) (renderer, error) { return s.Table2() }},
	{"table2x", "debloating outcomes (extended)", func(s *experiments.Suite) (renderer, error) { return s.Table2Ext() }},
	{"fig9", "scoring-method ablation", func(s *experiments.Suite) (renderer, error) { return s.Figure9() }},
	{"table3", "debloating cost", func(s *experiments.Suite) (renderer, error) { return s.Table3() }},
	{"fig10", "memory footprint reduction", func(s *experiments.Suite) (renderer, error) { return s.Figure10() }},
	{"fig11", "monetary cost reduction", func(s *experiments.Suite) (renderer, error) { return s.Figure11() }},
	{"fig12", "K sensitivity", func(s *experiments.Suite) (renderer, error) { return s.Figure12() }},
	{"fig13", "granularity ablation", func(s *experiments.Suite) (renderer, error) { return s.Figure13() }},
	{"fig14", "call-graph protection ablation", func(s *experiments.Suite) (renderer, error) { return s.Figure14() }},
	{"table4", "SnapStart comparison", func(s *experiments.Suite) (renderer, error) { return s.Table4() }},
	{"ext-tune", "power-tuning extension", func(s *experiments.Suite) (renderer, error) { return s.ExtPowerTune() }},
	{"reliability", "faulted replay comparison", func(s *experiments.Suite) (renderer, error) { return s.Reliability() }},
}

func targetNames() []string {
	names := make([]string, len(drivers))
	for i, d := range drivers {
		names[i] = d.name
	}
	return names
}

func main() {
	list := flag.Bool("list", false, "list experiment targets and exit")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file of the run")
	events := flag.String("events", "", "write the JSONL event log of the run")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot of the run")
	flag.Parse()

	if *list {
		fmt.Println("experiment targets:")
		for _, d := range drivers {
			fmt.Printf("  %-12s %s\n", d.name, d.desc)
		}
		return
	}

	targets := flag.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = targetNames()
	}

	var tr *obs.Tracer
	if *trace != "" || *events != "" || *metrics != "" {
		tr = obs.New()
	}
	suite := experiments.NewSuite()
	suite.Platform.Tracer = tr

	byName := make(map[string]func(*experiments.Suite) (renderer, error), len(drivers))
	for _, d := range drivers {
		byName[d.name] = d.run
	}
	for _, target := range targets {
		driver, ok := byName[strings.ToLower(target)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q; known: %s\n",
				target, strings.Join(append(targetNames(), "all"), " "))
			os.Exit(2)
		}
		res, err := driver(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", target, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}

	if tr != nil {
		if err := tr.WriteFiles(*trace, *events, *metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
