// Command experiments regenerates the paper's tables and figures as text.
//
// Usage:
//
//	experiments [fig1|table1|fig2|fig8|table2|fig9|table3|fig10|fig11|fig12|fig13|fig14|table4|reliability|all]
//
// With no argument it runs everything (a few seconds: the corpus is
// debloated once and reused across figures).
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

type renderer interface{ Render() string }

func main() {
	targets := os.Args[1:]
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = []string{"fig1", "table1", "fig2", "fig8", "table2", "table2x",
			"fig9", "table3", "fig10", "fig11", "fig12", "fig13", "fig14", "table4",
			"ext-tune", "reliability"}
	}

	suite := experiments.NewSuite()
	drivers := map[string]func() (renderer, error){
		"fig1":        func() (renderer, error) { return suite.Figure1() },
		"table1":      func() (renderer, error) { return suite.Table1() },
		"fig2":        func() (renderer, error) { return suite.Figure2() },
		"fig8":        func() (renderer, error) { return suite.Figure8() },
		"table2":      func() (renderer, error) { return suite.Table2() },
		"fig9":        func() (renderer, error) { return suite.Figure9() },
		"table3":      func() (renderer, error) { return suite.Table3() },
		"fig10":       func() (renderer, error) { return suite.Figure10() },
		"fig11":       func() (renderer, error) { return suite.Figure11() },
		"fig12":       func() (renderer, error) { return suite.Figure12() },
		"fig13":       func() (renderer, error) { return suite.Figure13() },
		"fig14":       func() (renderer, error) { return suite.Figure14() },
		"table4":      func() (renderer, error) { return suite.Table4() },
		"table2x":     func() (renderer, error) { return suite.Table2Ext() },
		"ext-tune":    func() (renderer, error) { return suite.ExtPowerTune() },
		"reliability": func() (renderer, error) { return suite.Reliability() },
	}

	for _, target := range targets {
		driver, ok := drivers[strings.ToLower(target)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q; known: fig1 table1 fig2 fig8 table2 table2x fig9 table3 fig10 fig11 fig12 fig13 fig14 table4 ext-tune reliability\n", target)
			os.Exit(2)
		}
		res, err := driver()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", target, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}
}
