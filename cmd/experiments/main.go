// Command experiments regenerates the paper's tables and figures as text.
//
// Usage:
//
//	experiments [flags] [target ...]
//	experiments -list
//
// Targets are listed by -list; with no target (or "all") every driver runs
// in presentation order (a few seconds: the corpus is debloated once and
// reused across figures). Flags must precede targets.
//
// When the full target set runs, the corpus is debloated up front on
// -workers goroutines (default: GOMAXPROCS). Parallelism and the shared
// import-memoization caches only change real wall-clock time: the rendered
// tables, traces, and metrics are byte-identical to a sequential, uncached
// run (see DESIGN.md §9). -memo=false disables memoization, e.g. to verify
// that invariant or to profile the uncached pipeline.
//
// With -trace/-events/-metrics, the run records deterministic telemetry
// over simulated time and writes it to the given files (Chrome trace-event
// JSON, JSONL event log, and a metrics snapshot respectively). With
// -cpuprofile/-memprofile, real-clock pprof profiles of the run itself are
// written (go tool pprof).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/pyruntime"
)

type renderer interface{ Render() string }

// drivers maps each target to its suite method, in presentation order.
// This slice is the single source of truth: the usage string, -list, and
// the default "all" set all derive from it.
var drivers = []struct {
	name string
	desc string
	run  func(*experiments.Suite) (renderer, error)
}{
	{"fig1", "cold/warm start latency anatomy", func(s *experiments.Suite) (renderer, error) { return s.Figure1() }},
	{"table1", "corpus applications", func(s *experiments.Suite) (renderer, error) { return s.Table1() }},
	{"fig2", "cost breakdown per application", func(s *experiments.Suite) (renderer, error) { return s.Figure2() }},
	{"fig8", "initialization time reduction", func(s *experiments.Suite) (renderer, error) { return s.Figure8() }},
	{"table2", "debloating outcomes", func(s *experiments.Suite) (renderer, error) { return s.Table2() }},
	{"table2x", "debloating outcomes (extended)", func(s *experiments.Suite) (renderer, error) { return s.Table2Ext() }},
	{"fig9", "scoring-method ablation", func(s *experiments.Suite) (renderer, error) { return s.Figure9() }},
	{"table3", "debloating cost", func(s *experiments.Suite) (renderer, error) { return s.Table3() }},
	{"fig10", "memory footprint reduction", func(s *experiments.Suite) (renderer, error) { return s.Figure10() }},
	{"fig11", "monetary cost reduction", func(s *experiments.Suite) (renderer, error) { return s.Figure11() }},
	{"fig12", "K sensitivity", func(s *experiments.Suite) (renderer, error) { return s.Figure12() }},
	{"fig13", "granularity ablation", func(s *experiments.Suite) (renderer, error) { return s.Figure13() }},
	{"fig14", "call-graph protection ablation", func(s *experiments.Suite) (renderer, error) { return s.Figure14() }},
	{"table4", "SnapStart comparison", func(s *experiments.Suite) (renderer, error) { return s.Table4() }},
	{"ext-tune", "power-tuning extension", func(s *experiments.Suite) (renderer, error) { return s.ExtPowerTune() }},
	{"reliability", "faulted replay comparison", func(s *experiments.Suite) (renderer, error) { return s.Reliability() }},
	{"monitor", "SLO-monitored replay comparison", func(s *experiments.Suite) (renderer, error) { return s.Monitor() }},
	{"rollout", "closed-loop canary/breaker/self-heal replay", func(s *experiments.Suite) (renderer, error) { return s.Rollout() }},
	{"fleet", "fleet-scale sharded replay (10k functions, streaming telemetry)", func(s *experiments.Suite) (renderer, error) { return s.Fleet() }},
	{"query", "metrics query engine over a fleet replay (rules, exemplars, 1-vs-4-worker identity)", func(s *experiments.Suite) (renderer, error) { return s.Query() }},
	{"chaos", "incident-day chaos replay: mitigations off vs on over a 4-arm fleet", func(s *experiments.Suite) (renderer, error) { return s.Chaos() }},
}

func targetNames() []string {
	names := make([]string, len(drivers))
	for i, d := range drivers {
		names[i] = d.name
	}
	return names
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiment targets and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the up-front corpus debloat (full runs only)")
	memo := flag.Bool("memo", true, "memoize module imports across oracle runs (off: re-interpret everything; output is identical either way)")
	engine := flag.String("engine", "compiled", "pyruntime execution engine: compiled|walker (output is byte-identical either way)")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file of the run")
	events := flag.String("events", "", "write the JSONL event log of the run")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot of the run")
	flame := flag.String("flame", "", "write a folded-stack flamegraph of the run (speedscope/flamegraph.pl)")
	openmetrics := flag.String("openmetrics", "", "write an OpenMetrics text exposition of the run's metrics")
	fleetFunctions := flag.Int("fleet-functions", 0, "population size for the fleet/query/chaos targets (0: each target's default)")
	fleetWorkers := flag.Int("fleet-workers", 0, "worker shards for the fleet/query/chaos targets, 0 = GOMAXPROCS (wall-clock only; output — including the chaos scorecard — is byte-identical at any count)")
	cpuprofile := flag.String("cpuprofile", "", "write a real-clock CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (post-GC) at exit to this file")
	flag.Parse()

	// Reject non-positive worker counts up front: they would reach the
	// corpus pool and the DD scheduler, which quietly degrade to sequential;
	// a misconfigured harness should fail loudly and deterministically.
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "-workers must be >= 1 (got %d)\n", *workers)
		return 2
	}
	if *fleetFunctions < 0 {
		fmt.Fprintf(os.Stderr, "-fleet-functions must be >= 0, 0 meaning the target's default (got %d)\n", *fleetFunctions)
		return 2
	}
	if *fleetWorkers < 0 {
		fmt.Fprintf(os.Stderr, "-fleet-workers must be >= 0, 0 meaning GOMAXPROCS (got %d)\n", *fleetWorkers)
		return 2
	}
	eng, err := pyruntime.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-engine: %v\n", err)
		return 2
	}
	pyruntime.SetDefaultEngine(eng)

	if *list {
		fmt.Println("experiment targets:")
		for _, d := range drivers {
			fmt.Printf("  %-12s %s\n", d.name, d.desc)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	targets := flag.Args()
	full := len(targets) == 0 || (len(targets) == 1 && targets[0] == "all")
	if full {
		targets = targetNames()
	}

	var tr *obs.Tracer
	if *trace != "" || *events != "" || *metrics != "" || *flame != "" || *openmetrics != "" {
		tr = obs.New()
	}
	suite := experiments.NewSuite()
	suite.Platform.Tracer = tr
	suite.DisableMemo = !*memo
	suite.FleetFunctions = *fleetFunctions
	suite.FleetWorkers = *fleetWorkers

	// A full run needs every app debloated anyway, so prime the result
	// cache on the worker pool before the (sequential) drivers render.
	if full {
		if err := suite.DebloatAll(*workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	byName := make(map[string]func(*experiments.Suite) (renderer, error), len(drivers))
	for _, d := range drivers {
		byName[d.name] = d.run
	}
	for _, target := range targets {
		driver, ok := byName[strings.ToLower(target)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q; known: %s\n",
				target, strings.Join(append(targetNames(), "all"), " "))
			return 2
		}
		res, err := driver(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", target, err)
			return 1
		}
		fmt.Println(res.Render())
	}

	if tr != nil {
		if err := tr.WriteFiles(*trace, *events, *metrics, *flame, *openmetrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}
